open Aarch64
module C = Camouflage

type task = { va : int64; slot : int; pid : int }

type syscall_outcome = Ok of int64 | Killed of string | Panicked of string

type user_exit =
  | Exited of int64
  | User_killed of string
  | User_panicked of string
  | Watchdog_expired of { budget : int; retries : int }

let user_exit_to_string = function
  | Exited v -> Printf.sprintf "exited %Ld" v
  | User_killed m -> Printf.sprintf "killed (%s)" m
  | User_panicked m -> Printf.sprintf "panicked (%s)" m
  | Watchdog_expired { budget; retries } ->
      Printf.sprintf "watchdog expired (budget %d after %d retries)" budget retries

(* Structured oops record: everything the kernel knew about a fault at
   the moment it decided to kill rather than panic. *)
type oops = {
  oops_cpu : int;
  oops_pid : int;
  oops_cause : string;
  oops_pc : int64;
  oops_dump : string;  (** [Cpu.dump_state] at the stop *)
}

(* Per-core scheduler state mirrored by the in-memory per-CPU area:
   [cur] is the core's current task while the core is not the active
   (host-driven) one. *)
type cpu_state = { pc : Percpu.t; mutable cur : task; mutable idle : task option }

type t = {
  machine : Machine.t;
  mutable cpu : Cpu.t;  (** the active core — all helpers run on it *)
  mutable active : int;
  mutable percpu : cpu_state array;
  config : C.Config.t;
  registry : C.Pointer_integrity.registry;
  hyp : Hypervisor.t;
  xom : Xom.t;
  bruteforce : C.Bruteforce.t;
  mutable kernel : Kelf.Loader.placed;
  rng : Camo_util.Rng.t;
  mutable current : task;
  mutable tasks : task list;
  mutable next_pid : int;
  mutable next_stack_slot : int;
  mutable module_alloc : int64;
  mutable log : (int64 * string) list;  (* (cycle stamp, line), newest first *)
  mutable panicked : bool;
  mutable oopses : oops list;  (* newest first *)
  mutable table_mac_golden : int64;
  (* X7: saved-context attestation MACs, pid -> MAC (host-held, like the
     table MAC: state the attacker cannot reach) *)
  context_macs : (int, int64) Hashtbl.t;
  mutable context_key : Pac.key;  (** monitor key, host-held *)
}

(* GPR save/restore on the kernel entry/exit path, charged rather than
   executed: the registers saved belong to the interrupted user context
   which host-driven entries do not have. 31 stores or loads at the
   store/load cost of the A53 profile, plus bookkeeping. *)
let entry_overhead_cycles = 35
let exit_overhead_cycles = 35

(* Page-table and mm copying that the model's fork elides. *)
let fork_vm_copy_cycles = 1200

(* Run-queue manipulation and task-selection work of the scheduler that
   the model's switch path elides (it jumps straight to cpu_switch_to). *)
let sched_pick_cycles = 150

let cpu t = t.cpu
let machine t = t.machine
let cpus t = Machine.cpus t.machine
let config t = t.config
let registry t = t.registry
let xom t = t.xom
let current t = t.current
let tasks t = t.tasks
let panicked t = t.panicked
let log t = List.rev_map (fun (_, line) -> line) t.log
let log_events t = List.rev t.log
let bruteforce t = t.bruteforce
let oopses t = List.rev t.oopses

(* The per-core telemetry sink of the active core, when the system was
   booted with telemetry. *)
let sink t = Cpu.telemetry t.cpu
let telemetry t = Machine.telemetry t.machine

let emit_event t payload =
  match sink t with
  | Some s -> Telemetry.Sink.emit s ~ts:(Cpu.cycles t.cpu) payload
  | None -> ()

let logf t fmt =
  Printf.ksprintf
    (fun s ->
      t.log <- (Cpu.cycles t.cpu, s) :: t.log;
      emit_event t (Telemetry.Event.Log { line = s }))
    fmt

(* [with_core t cid f] — run [f] with core [cid] as the active core:
   [t.cpu]/[t.current] become that core's view, so every helper (key
   install, syscall dispatch, fault policy) executes on it. The per-CPU
   state is written back afterwards. *)
let with_core t cid f =
  if cid = t.active then f ()
  else begin
    let prev_active = t.active in
    t.percpu.(prev_active).cur <- t.current;
    t.cpu <- Machine.core t.machine cid;
    t.active <- cid;
    t.current <- t.percpu.(cid).cur;
    let restore () =
      t.percpu.(cid).cur <- t.current;
      t.cpu <- Machine.core t.machine prev_active;
      t.active <- prev_active;
      t.current <- t.percpu.(prev_active).cur
    in
    match f () with
    | v ->
        restore ();
        v
    | exception e ->
        restore ();
        raise e
  end

(* Log with a cpu tag on multi-core machines; single-core logs keep
   their historical shape. *)
let logcpu t fmt =
  if Machine.cpus t.machine > 1 then logf t ("cpu%d: " ^^ fmt) t.active else logf t fmt

let kernel_symbol t name = Kelf.Loader.symbol t.kernel name

let kernel_uses_pauth t =
  Cpu.has_pauth t.cpu
  && (t.config.C.Config.scheme <> C.Modifier.No_cfi || t.config.C.Config.protect_pointers)

(* Call one of the audited XOM key routines: its generated MOVZ/MOVK
   stream is charged like any other code, but telemetry attributes the
   cycles to the key-switch origin and logs a key-switch event. *)
let xom_key_call t ~domain ~err addr =
  emit_event t
    (Telemetry.Event.Key_switch { domain; pid = t.current.pid });
  let call () =
    match Cpu.call t.cpu addr with
    | Cpu.Sentinel_return -> ()
    | other -> failwith (err ^ Cpu.stop_to_string other)
  in
  match sink t with
  | Some s ->
      Telemetry.Counters.count_key_install (Telemetry.Sink.counters s);
      Telemetry.Sink.with_origin s Telemetry.Profile.Cfi_key_switch call
  | None -> call ()

let install_kernel_keys t =
  xom_key_call t ~domain:"kernel" ~err:"key setter did not return: "
    t.xom.Xom.setter_addr;
  (* per-CPU accounting; the array is empty only during early boot of
     the boot core, before the per-CPU areas exist *)
  if t.active < Array.length t.percpu then
    Percpu.count_key_install t.cpu t.percpu.(t.active).pc

(* Per-CPU key-install verification: probe every core's key registers
   against the boot keys. A core is reported when any key register does
   not hold the setter's material — e.g. it skipped the setter. *)
let unkeyed_cpus t =
  List.filter_map
    (fun core ->
      match
        C.Keys.missing_keys ~expected:t.xom.Xom.kernel_keys ~read:(Cpu.pac_key core)
      with
      | [] -> None
      | missing -> Some (Cpu.id core, missing))
    (Machine.cores t.machine)

let key_installs_on t ~cpu:cid =
  let core = Machine.core t.machine cid in
  Percpu.key_installs core t.percpu.(cid).pc

let restore_user_keys t =
  Cpu.set_reg t.cpu (Insn.R 0) t.current.va;
  xom_key_call t ~domain:"user" ~err:"key restore did not return: "
    t.xom.Xom.restore_addr

(* Host-side mirror of the backward-edge signing, used to prefabricate
   the switch frame of a fresh task (Section 5.2, cpu_switch_to). *)
let sign_return_address t ~sp ~func_addr value =
  match t.config.C.Config.scheme with
  | C.Modifier.No_cfi -> value
  | scheme ->
      if not (Cpu.has_pauth t.cpu) then value
      else begin
        let key =
          Cpu.pac_key t.cpu (C.Keys.key_for t.config.C.Config.mode C.Keys.Backward)
        in
        let modifier = C.Modifier.return_modifier scheme ~sp ~func_addr in
        Pac.compute ~cipher:(Cpu.cipher t.cpu) ~key ~cfg:(Cpu.kernel_cfg t.cpu) ~modifier
          value
      end

let task_stack_top task = Layout.task_stack_top ~slot:task.slot

(* Host-orchestrated kernel work (task setup, scheduling, workqueues)
   conceptually runs between kernel entry and exit: the kernel keys must
   be live in the key registers, not the interrupted user's. *)
let enter_kernel_context t = if kernel_uses_pauth t then install_kernel_keys t

(* Write the prefabricated frame a fresh task is "resumed" from: popping
   it inside cpu_switch_to authenticates LR and returns to the host
   sentinel. *)
let prepare_switch_frame t task =
  enter_kernel_context t;
  let top = task_stack_top task in
  let sp = Int64.sub top 16L in
  let switch_addr = kernel_symbol t "cpu_switch_to" in
  let signed_lr =
    sign_return_address t ~sp:top ~func_addr:switch_addr Cpu.sentinel
  in
  Kmem.write64 t.cpu sp 0L;
  Kmem.write64 t.cpu (Int64.add sp 8L) signed_lr;
  let stored_sp =
    C.Pointer_integrity.sign_value t.cpu t.config t.registry ~type_name:"task"
      ~member_name:"kernel_sp" ~obj_addr:task.va sp
  in
  Kmem.write64 t.cpu (Int64.add task.va (Int64.of_int Kobject.Task.off_kernel_sp)) stored_sp

let write_user_keys t task =
  List.iteri
    (fun idx _key ->
      let hi, lo = Camo_util.Rng.key128 t.rng in
      let base = Int64.add task.va (Int64.of_int (Kobject.Task.off_user_keys + (16 * idx))) in
      Kmem.write64 t.cpu base hi;
      Kmem.write64 t.cpu (Int64.add base 8L) lo)
    Sysreg.[ IA; IB; DA; DB; GA ]

let alloc_task_struct t =
  let cell = kernel_symbol t "task_slab_next" in
  let va = Kmem.read64 t.cpu cell in
  Kmem.write64 t.cpu cell (Int64.add va (Int64.of_int Kobject.Task.size));
  va

let init_task_fields t task =
  Kmem.write64 t.cpu
    (Int64.add task.va (Int64.of_int Kobject.Task.off_pid))
    (Int64.of_int task.pid);
  Kmem.write64 t.cpu (Int64.add task.va (Int64.of_int Kobject.Task.off_state)) 0L;
  Kmem.write64 t.cpu
    (Int64.add task.va (Int64.of_int Kobject.Task.off_kstack_base))
    (Int64.sub (task_stack_top task) (Int64.of_int Layout.task_stack_bytes))

(* Install a signed credentials pointer: pid 1 (init) runs as root, all
   other tasks get the unprivileged user credentials. *)
let assign_cred t task =
  enter_kernel_context t;
  let cred_sym = if task.pid = 1 then "root_cred" else "user_cred" in
  let cred = kernel_symbol t cred_sym in
  let signed =
    C.Pointer_integrity.sign_value t.cpu t.config t.registry ~type_name:"task"
      ~member_name:"cred" ~obj_addr:task.va cred
  in
  Kmem.write64 t.cpu (Int64.add task.va (Int64.of_int Kobject.Task.off_cred)) signed

(* Give a task the console on stdout/stderr: a file object whose signed
   ops pointer targets the console ops table. *)
let install_console_fds t task =
  let cell = kernel_symbol t "file_slab_next" in
  let file = Kmem.read64 t.cpu cell in
  Kmem.write64 t.cpu cell (Int64.add file (Int64.of_int Kobject.File.size));
  let fops = kernel_symbol t "console_fops" in
  enter_kernel_context t;
  let signed =
    C.Pointer_integrity.sign_value t.cpu t.config t.registry ~type_name:"file"
      ~member_name:"f_ops" ~obj_addr:file fops
  in
  Kmem.write64 t.cpu (Int64.add file (Int64.of_int Kobject.File.off_f_ops)) signed;
  List.iter
    (fun fd ->
      Kmem.write64 t.cpu
        (Int64.add task.va (Int64.of_int (Kobject.Task.off_fd_table + (8 * fd))))
        file)
    [ 1; 2 ]

let create_task t =
  let va = alloc_task_struct t in
  let task = { va; slot = t.next_stack_slot; pid = t.next_pid } in
  t.next_pid <- t.next_pid + 1;
  t.next_stack_slot <- t.next_stack_slot + 1;
  init_task_fields t task;
  write_user_keys t task;
  prepare_switch_frame t task;
  assign_cred t task;
  install_console_fds t task;
  t.tasks <- t.tasks @ [ task ];
  task

let mark_dead t task =
  Kmem.write64 t.cpu (Int64.add task.va (Int64.of_int Kobject.Task.off_state)) 1L

(* Capture a structured oops record (cause, registers, recent-trace
   disassembly) for the current task on the active core; returns the
   state dump so callers can also log it. *)
let record_oops t ~cause ~pc =
  emit_event t (Telemetry.Event.Oops { pid = t.current.pid; cause });
  let dump = Cpu.dump_state t.cpu in
  (* fold the structured event timeline into the dump: this replaces
     the old ad-hoc recent_trace-only plumbing *)
  let dump =
    match sink t with
    | Some s ->
        let evs = Telemetry.Ring.to_list (Telemetry.Sink.ring s) in
        let n = List.length evs in
        let tail =
          if n > 8 then List.filteri (fun i _ -> i >= n - 8) evs else evs
        in
        if tail = [] then dump
        else
          dump ^ "  events (newest last):\n"
          ^ String.concat ""
              (List.map
                 (fun e -> "    " ^ Telemetry.Event.to_string e ^ "\n")
                 tail)
    | None -> dump
  in
  t.oopses <-
    {
      oops_cpu = t.active;
      oops_pid = t.current.pid;
      oops_cause = cause;
      oops_pc = pc;
      oops_dump = dump;
    }
    :: t.oopses;
  dump

let log_dump t dump =
  List.iter
    (fun line -> if line <> "" then logf t "  %s" line)
    (String.split_on_char '\n' dump)

(* Classify a machine stop on the kernel path. *)
let handle_kernel_stop t stop =
  match stop with
  | Cpu.Sentinel_return -> Ok (Cpu.reg t.cpu (Insn.R 0))
  | Cpu.Fault { fault = Cpu.Mmu_fault f; pc } ->
      let poisoned =
        Vaddr.is_poisoned (Cpu.kernel_cfg t.cpu) f.Mmu.va
        || Vaddr.is_poisoned (Cpu.user_cfg t.cpu) f.Mmu.va
      in
      if poisoned then begin
        emit_event t
          (Telemetry.Event.Auth_failure { pid = t.current.pid; va = f.Mmu.va });
        logcpu t "PAC authentication failure: pid %d at pc=0x%Lx va=0x%Lx" t.current.pid
          pc f.Mmu.va;
        ignore
          (record_oops t ~pc
             ~cause:(Printf.sprintf "PAC authentication failure (va=0x%Lx)" f.Mmu.va));
        match
          C.Bruteforce.record_failure t.bruteforce ~cpu:t.active ~pid:t.current.pid
            ~faulting_va:f.Mmu.va
        with
        | C.Bruteforce.Kill_process ->
            mark_dead t t.current;
            Killed "PAC failure: SIGKILL"
        | C.Bruteforce.Panic ->
            t.panicked <- true;
            logf t "kernel panic: PAC failure threshold exceeded (%d failures)"
              (C.Bruteforce.failures t.bruteforce);
            Panicked "PAC failure threshold exceeded"
      end
      else begin
        logf t "kernel oops: pid %d %s at pc=0x%Lx" t.current.pid (Mmu.fault_to_string f) pc;
        log_dump t (record_oops t ~pc ~cause:(Mmu.fault_to_string f));
        mark_dead t t.current;
        Killed "kernel oops: SIGKILL"
      end
  | Cpu.Fault { fault; pc } ->
      logf t "kernel oops: pid %d %s at pc=0x%Lx" t.current.pid
        (Cpu.stop_to_string (Cpu.Fault { fault; pc }))
        pc;
      log_dump t (record_oops t ~pc ~cause:(Cpu.fault_to_string fault));
      mark_dead t t.current;
      Killed "kernel oops: SIGKILL"
  | Cpu.Hlt code ->
      t.panicked <- true;
      logf t "kernel halted (hlt #%d)" code;
      log_dump t
        (record_oops t ~pc:(Cpu.pc t.cpu)
           ~cause:(Printf.sprintf "kernel halted (hlt #%d)" code));
      Panicked (Printf.sprintf "hlt #%d" code)
  | Cpu.Svc _ | Cpu.Brk _ | Cpu.Eret_done | Cpu.Insn_limit ->
      logf t "kernel oops: unexpected stop %s" (Cpu.stop_to_string stop);
      log_dump t
        (record_oops t ~pc:(Cpu.pc t.cpu)
           ~cause:("unexpected stop: " ^ Cpu.stop_to_string stop));
      mark_dead t t.current;
      Killed "kernel oops: SIGKILL"

let kernel_entry ?(trap_charged = false) t =
  (* the SVC instruction charges the trap cost when the entry comes from
     machine-executed user code; host-driven entries pay it here (and
     count it — a machine-executed SVC counts itself) *)
  if not trap_charged then begin
    Cpu.charge t.cpu (Cpu.cost_profile t.cpu).Cost.exception_entry;
    match sink t with
    | Some s ->
        Telemetry.Counters.count_exception_entry (Telemetry.Sink.counters s)
    | None -> ()
  end;
  Cpu.charge t.cpu entry_overhead_cycles;
  Cpu.set_el t.cpu El.El1;
  Cpu.set_sp_of t.cpu El.El1 (task_stack_top t.current);
  if kernel_uses_pauth t then install_kernel_keys t;
  Cpu.set_reg t.cpu (Insn.R 28) t.current.va

let kernel_exit t =
  if kernel_uses_pauth t then restore_user_keys t;
  Cpu.charge t.cpu exit_overhead_cycles;
  Cpu.charge t.cpu (Cpu.cost_profile t.cpu).Cost.eret;
  match sink t with
  | Some s ->
      Telemetry.Counters.count_exception_return (Telemetry.Sink.counters s)
  | None -> ()

let call_handler t addr =
  let stop = Cpu.call t.cpu addr in
  handle_kernel_stop t stop

let syscall_gen ?trap_charged t ~nr ~args =
  if t.panicked then Panicked "system halted"
  else begin
    let name = Kbuild.syscall_name nr in
    emit_event t
      (Telemetry.Event.Syscall_enter { nr; name; pid = t.current.pid });
    kernel_entry ?trap_charged t;
    List.iteri (fun idx v -> Cpu.set_reg t.cpu (Insn.R idx) v) args;
    Cpu.set_reg t.cpu (Insn.R 28) t.current.va;
    let table = kernel_symbol t "sys_call_table" in
    let handler =
      if nr < 0 || nr >= Kbuild.syscall_count then 0L
      else Kmem.read64 t.cpu (Int64.add table (Int64.of_int (8 * nr)))
    in
    let outcome =
      if handler = 0L then Ok (-38L) (* -ENOSYS *) else call_handler t handler
    in
    (match outcome with
    | Ok _ | Killed _ -> kernel_exit t
    | Panicked _ -> ());
    let result =
      match outcome with Ok v -> v | Killed _ | Panicked _ -> -1L
    in
    emit_event t
      (Telemetry.Event.Syscall_exit { nr; name; pid = t.current.pid; result });
    outcome
  end

let syscall t ~nr ~args = syscall_gen t ~nr ~args

let fork t =
  match syscall t ~nr:Kbuild.sys_fork ~args:[] with
  | Ok child_va ->
      Cpu.charge t.cpu fork_vm_copy_cycles;
      let child = { va = child_va; slot = t.next_stack_slot; pid = t.next_pid } in
      t.next_pid <- t.next_pid + 1;
      t.next_stack_slot <- t.next_stack_slot + 1;
      init_task_fields t child;
      (* fork inherits the parent's user keys (already copied with the
         task struct); the stored kernel SP and credentials pointer must
         be re-signed for the child object, exactly the struct-copy
         hazard of Section 6.3. *)
      prepare_switch_frame t child;
      assign_cred t child;
      t.tasks <- t.tasks @ [ child ];
      Result.Ok child
  | Killed m | Panicked m -> Result.Error m

let switch_to t next =
  if t.panicked then Panicked "system halted"
  else begin
    let prev = t.current in
    emit_event t
      (Telemetry.Event.Context_switch { from_pid = prev.pid; to_pid = next.pid });
    Cpu.set_el t.cpu El.El1;
    enter_kernel_context t;
    (* the scheduler runs on the outgoing task's kernel stack; establish
       it unless a syscall already did *)
    let top = task_stack_top prev in
    let sp = Cpu.sp_of t.cpu El.El1 in
    let base = Int64.sub top (Int64.of_int Layout.task_stack_bytes) in
    if Int64.unsigned_compare sp base <= 0 || Int64.unsigned_compare sp top > 0 then
      Cpu.set_sp_of t.cpu El.El1 top;
    Cpu.set_reg t.cpu (Insn.R 0) prev.va;
    Cpu.set_reg t.cpu (Insn.R 1) next.va;
    Cpu.charge t.cpu sched_pick_cycles;
    (* the switch runs on the previous task's current kernel stack *)
    let outcome = call_handler t (kernel_symbol t "cpu_switch_to") in
    (match outcome with
    | Ok _ ->
        t.current <- next;
        (* closes the Context_switch marker above so the span layer can
           derive the switch cost; pure observation, no cycles charged *)
        emit_event t
          (Telemetry.Event.Switch_done
             { from_pid = prev.pid; to_pid = next.pid })
    | Killed _ | Panicked _ -> ());
    outcome
  end

let run_work t ~work_va =
  if t.panicked then Panicked "system halted"
  else begin
    Cpu.set_el t.cpu El.El1;
    enter_kernel_context t;
    Cpu.set_sp_of t.cpu El.El1 (task_stack_top t.current);
    Cpu.set_reg t.cpu (Insn.R 0) work_va;
    call_handler t (kernel_symbol t "run_work")
  end

(* Timer dispatch: fire expired timers against the virtual counter,
   authenticating every callback pointer on the way (timer.func is a
   protected lone function pointer). *)
let run_timers t =
  if t.panicked then Panicked "system halted"
  else begin
    Cpu.set_el t.cpu El.El1;
    enter_kernel_context t;
    Cpu.set_sp_of t.cpu El.El1 (task_stack_top t.current);
    Cpu.set_reg t.cpu (Insn.R 0) (Cpu.cycles t.cpu);
    call_handler t (kernel_symbol t "run_timers")
  end

(* Symbol tables for the telemetry profiler: half-open PC ranges from a
   placed layout, and the whole kernel (text plus the audited XOM
   routines, which live outside the image). *)
let layout_ranges (lay : Asm.layout) =
  Telemetry.Profile.ranges ~symbols:lay.Asm.symbols
    ~limit:(Int64.add lay.Asm.base (Int64.of_int lay.Asm.size))

let symbol_ranges t =
  let text = t.kernel.Kelf.Loader.text_layout in
  layout_ranges text
  @ Telemetry.Profile.ranges
      ~symbols:
        [
          ("kernel_key_setter", t.xom.Xom.setter_addr);
          ("user_key_restore", t.xom.Xom.restore_addr);
          ("uaccess_authda", t.xom.Xom.uaccess_authda_addr);
        ]
      ~limit:(Int64.add t.xom.Xom.base (Int64.of_int t.xom.Xom.bytes))

(* Host-side console drain: what the virtual UART has received. *)
let console_output t =
  let ring = kernel_symbol t "console_ring" in
  let head = Int64.to_int (Kmem.read64 t.cpu (kernel_symbol t "console_state")) in
  let len = min head 8192 in
  Kmem.read_string t.cpu ring len

(* Module loading. *)

let loader_env t =
  {
    Kelf.Loader.place =
      (fun ~text_bytes ~rodata_bytes ~data_bytes ->
        let text = t.module_alloc in
        let rodata = Int64.add text (Int64.of_int (Layout.round_pages text_bytes)) in
        let data = Int64.add rodata (Int64.of_int (Layout.round_pages rodata_bytes)) in
        t.module_alloc <- Int64.add data (Int64.of_int (Layout.round_pages data_bytes));
        (text, rodata, data));
    map_region =
      (fun ~base ~bytes purpose ->
        match purpose with
        | Kelf.Loader.Text ->
            Kmem.map_kernel_region t.cpu ~base ~bytes Mmu.rx;
            Hypervisor.protect_text t.hyp ~base ~bytes
        | Kelf.Loader.Rodata ->
            Kmem.map_kernel_region t.cpu ~base ~bytes Mmu.ro;
            Hypervisor.protect_rodata t.hyp ~base ~bytes
        | Kelf.Loader.Data -> Kmem.map_kernel_region t.cpu ~base ~bytes Mmu.rw);
    unmap_region =
      (fun ~base ~bytes purpose ->
        Kmem.unmap_region t.cpu ~base ~bytes;
        match purpose with
        | Kelf.Loader.Text | Kelf.Loader.Rodata ->
            (* lift the stage-2 write protection so the frames are
               reusable by the next load at this address *)
            Hypervisor.release t.hyp ~base ~bytes
        | Kelf.Loader.Data -> ());
    read32 = Kmem.read32 t.cpu;
    write32 = Kmem.write32 t.cpu;
    read64 = Kmem.read64 t.cpu;
    write64 = Kmem.write64 t.cpu;
    extra_symbols =
      List.filter_map
        (fun name ->
          match kernel_symbol t name with
          | addr -> Some (name, addr)
          | exception Not_found -> None)
        Kbuild.exported_symbols;
    allowed_key_writer = Xom.allowed_key_writer t.xom;
  }

let load_module t obj =
  let result =
    Kelf.Loader.load ~cpu:t.cpu ~config:t.config ~registry:t.registry ~env:(loader_env t)
      obj
  in
  (match result with
  | Result.Ok placed ->
      logf t "module %s loaded at 0x%Lx" placed.Kelf.Loader.object_name
        placed.Kelf.Loader.text_base
  | Result.Error e ->
      logf t "module %s rejected: %s" obj.Kelf.Object_file.obj_name
        (Kelf.Loader.error_to_string e));
  result

(* Unload a module: unmap text/rodata/data (lifting stage-2 protection)
   and, when the module is the most recent allocation, roll the bump
   allocator back so the next load reuses the same addresses — the
   decoded-instruction cache must observe new code at old addresses
   (covered by the invalidation regression tests). *)
let unload_module t (placed : Kelf.Loader.placed) =
  Kelf.Loader.unload ~env:(loader_env t) placed;
  let region_end =
    Int64.add placed.Kelf.Loader.data_base
      (Int64.of_int (Layout.round_pages placed.Kelf.Loader.data_bytes))
  in
  if region_end = t.module_alloc then t.module_alloc <- placed.Kelf.Loader.text_base;
  logf t "module %s unloaded from 0x%Lx" placed.Kelf.Loader.object_name
    placed.Kelf.Loader.text_base

(* User execution. *)

let map_user_program t prog =
  let layout = Asm.assemble prog ~base:Layout.user_text_base in
  Kmem.map_user_region t.cpu ~base:Layout.user_text_base
    ~bytes:(max 4096 layout.Asm.size) Mmu.rx;
  Kmem.map_user_region t.cpu
    ~base:(Int64.sub Layout.user_stack_top 0x10000L)
    ~bytes:0x10000 Mmu.rw;
  Kmem.map_user_region t.cpu ~base:Layout.user_data_base ~bytes:0x10000 Mmu.rw;
  Asm.encode_into layout ~write32:(Kmem.write32 t.cpu);
  layout

let save_user_gprs t = Array.init 31 (fun idx -> Cpu.reg t.cpu (Insn.R idx))

let restore_user_gprs t saved = Array.iteri (fun idx v -> Cpu.set_reg t.cpu (Insn.R idx) v) saved

(* Cost of one watchdog intervention: timer interrupt, inspection of the
   stuck task, reprogramming the budget. *)
let watchdog_backoff_cycles = 400

let run_user ?(max_insns = 10_000_000) ?(watchdog_retries = 2) t ~entry =
  (* entering EL0: the task's own keys must be live (R5) *)
  if Cpu.has_pauth t.cpu then restore_user_keys t;
  Cpu.set_el t.cpu El.El0;
  Cpu.set_sp_of t.cpu El.El0 Layout.user_stack_top;
  Cpu.set_reg t.cpu Insn.lr Cpu.sentinel;
  Cpu.set_pc t.cpu entry;
  let budget = ref max_insns in
  let retries_used = ref 0 in
  let rec loop () =
    match Cpu.run ~max_insns:!budget t.cpu with
    | Cpu.Svc nr when nr = Kbuild.sys_exit -> Exited (Cpu.reg t.cpu (Insn.R 0))
    | Cpu.Svc nr ->
        let user_pc = Cpu.pc t.cpu in
        let saved = save_user_gprs t in
        let args =
          [ Cpu.reg t.cpu (Insn.R 0); Cpu.reg t.cpu (Insn.R 1); Cpu.reg t.cpu (Insn.R 2) ]
        in
        let outcome = syscall_gen ~trap_charged:true t ~nr ~args in
        let result = (match outcome with Ok v -> v | Killed _ | Panicked _ -> -1L) in
        (match outcome with
        | Ok _ ->
            restore_user_gprs t saved;
            Cpu.set_reg t.cpu (Insn.R 0) result;
            Cpu.set_el t.cpu El.El0;
            Cpu.set_pc t.cpu user_pc;
            loop ()
        | Killed m -> User_killed m
        | Panicked m -> User_panicked m)
    | Cpu.Sentinel_return -> Exited (Cpu.reg t.cpu (Insn.R 0))
    | Cpu.Hlt code -> User_killed (Printf.sprintf "hlt #%d in user mode" code)
    | Cpu.Brk code -> User_killed (Printf.sprintf "brk #%d" code)
    | Cpu.Fault { fault; pc } ->
        logf t "segfault: pid %d %s at pc=0x%Lx" t.current.pid
          (match fault with
          | Cpu.Mmu_fault f -> Mmu.fault_to_string f
          | Cpu.Undefined_instruction w -> Printf.sprintf "undefined insn 0x%08lx" w
          | Cpu.Hyp_denied sr | Cpu.El_denied sr -> "denied access to " ^ Sysreg.name sr)
          pc;
        mark_dead t t.current;
        User_killed "SIGSEGV"
    | Cpu.Eret_done -> loop ()
    | Cpu.Insn_limit ->
        (* Watchdog: treat a blown instruction budget as a possibly
           transient stall — retry with a doubled budget and a charged
           backoff, a bounded number of times, before escalating. *)
        if !retries_used < watchdog_retries then begin
          incr retries_used;
          budget := !budget * 2;
          Cpu.charge t.cpu (watchdog_backoff_cycles * !retries_used);
          logcpu t "watchdog: pid %d blew its instruction budget; retry %d/%d (budget %d)"
            t.current.pid !retries_used watchdog_retries !budget;
          loop ()
        end
        else begin
          logcpu t "watchdog: pid %d unresponsive after %d retries; escalating to SIGKILL"
            t.current.pid !retries_used;
          log_dump t
            (record_oops t ~pc:(Cpu.pc t.cpu) ~cause:"watchdog: instruction budget exhausted");
          mark_dead t t.current;
          Watchdog_expired { budget = !budget; retries = !retries_used }
        end
  in
  loop ()

(* Kernel integrity monitor: a chained PACGA MAC over the syscall table
   under the generic-data key. The golden value is taken at boot and
   kept host-side (playing the role of attestation state the attacker
   cannot reach); re-measuring detects any tampering that slipped past
   the stage-2 write protection. *)

let measure_syscall_table t =
  enter_kernel_context t;
  Cpu.set_el t.cpu El.El1;
  Cpu.set_sp_of t.cpu El.El1 (task_stack_top t.current);
  Cpu.set_reg t.cpu (Insn.R 0) (kernel_symbol t "sys_call_table");
  Cpu.set_reg t.cpu (Insn.R 1) (Int64.of_int Kbuild.syscall_count);
  match Cpu.call t.cpu (kernel_symbol t "table_mac") with
  | Cpu.Sentinel_return -> Cpu.reg t.cpu (Insn.R 0)
  | other -> failwith ("table_mac: " ^ Cpu.stop_to_string other)

let record_table_mac t = t.table_mac_golden <- measure_syscall_table t

let verify_syscall_table t =
  if not (Cpu.has_pauth t.cpu) then true
  else begin
  let current = measure_syscall_table t in
  let ok = current = t.table_mac_golden in
  if not ok then logf t "integrity monitor: syscall table MAC mismatch";
  ok
  end

(* X7 (Section 8 future work, register spills / interrupt handler): a
   chained PACGA MAC over a task's saved user context. Host-side mirror
   of the machine's table_mac, with the machine's GA key; the cycle cost
   of the 33 MAC operations is charged. *)
let context_mac t task =
  let cipher = Cpu.cipher t.cpu in
  let key = t.context_key in
  let words =
    List.init 31 (fun idx -> Kmem.read64 t.cpu (Int64.add task.va (Int64.of_int (Kobject.Task.off_gprs + (8 * idx)))))
    @ [
        Kmem.read64 t.cpu (Int64.add task.va (Int64.of_int Kobject.Task.off_saved_pc));
        Kmem.read64 t.cpu (Int64.add task.va (Int64.of_int Kobject.Task.off_saved_sp));
      ]
  in
  Cpu.charge t.cpu (33 * (Cpu.cost_profile t.cpu).Cost.pauth);
  List.fold_left
    (fun acc w ->
      Pac.generic ~cipher ~key ~value:(Int64.logxor w acc) ~modifier:acc)
    0L words

(* Preemptive round-robin scheduling: user tasks run in timer quanta;
   quantum expiry triggers an IRQ-style kernel entry and a switch to the
   next runnable task. User context lives in the task structure. *)

let off_gpr idx = Kobject.Task.off_gprs + (8 * idx)

let save_user_context t task =
  for idx = 0 to 30 do
    Kmem.write64 t.cpu
      (Int64.add task.va (Int64.of_int (off_gpr idx)))
      (Cpu.reg t.cpu (Insn.R idx))
  done;
  Kmem.write64 t.cpu
    (Int64.add task.va (Int64.of_int Kobject.Task.off_saved_pc))
    (Cpu.pc t.cpu);
  Kmem.write64 t.cpu
    (Int64.add task.va (Int64.of_int Kobject.Task.off_saved_sp))
    (Cpu.sp_of t.cpu El.El0)

let restore_user_context t task =
  for idx = 0 to 30 do
    Cpu.set_reg t.cpu (Insn.R idx)
      (Kmem.read64 t.cpu (Int64.add task.va (Int64.of_int (off_gpr idx))))
  done;
  Cpu.set_pc t.cpu
    (Kmem.read64 t.cpu (Int64.add task.va (Int64.of_int Kobject.Task.off_saved_pc)));
  Cpu.set_sp_of t.cpu El.El0
    (Kmem.read64 t.cpu (Int64.add task.va (Int64.of_int Kobject.Task.off_saved_sp)))

(* Per-task user stacks, one MiB apart below the common stack top. *)
let user_stack_top_of task =
  Int64.sub Layout.user_stack_top (Int64.of_int (task.slot * 0x100000))

let spawn_user_task t ~entry =
  let task = create_task t in
  let stack_top = user_stack_top_of task in
  Kmem.map_user_region t.cpu ~base:(Int64.sub stack_top 0x10000L) ~bytes:0x10000 Mmu.rw;
  Kmem.write64 t.cpu (Int64.add task.va (Int64.of_int Kobject.Task.off_saved_pc)) entry;
  Kmem.write64 t.cpu (Int64.add task.va (Int64.of_int Kobject.Task.off_saved_sp)) stack_top;
  (* LR starts at the host sentinel so falling off main exits cleanly *)
  Kmem.write64 t.cpu (Int64.add task.va (Int64.of_int (off_gpr 30))) Cpu.sentinel;
  task

type sched_stats = {
  exits : (int * user_exit) list;  (** pid, exit status *)
  preemptions : int;
  slices : int;
}

let run_scheduled ?(quantum = 2000) ?(max_slices = 10_000) ?(context_integrity = false)
    t ~tasks:scheduled =
  let runnable = Queue.create () in
  List.iter (fun task -> Queue.add task runnable) scheduled;
  let exits = ref [] in
  let preemptions = ref 0 in
  let slices = ref 0 in
  let finish task status = exits := (task.pid, status) :: !exits in
  let preempt_to task next =
    (* timer IRQ: kernel entry, context switch, return to user *)
    incr preemptions;
    Cpu.charge t.cpu (Cpu.cost_profile t.cpu).Cost.exception_entry;
    Cpu.charge t.cpu entry_overhead_cycles;
    save_user_context t task;
    if context_integrity && Cpu.has_pauth t.cpu then
      Hashtbl.replace t.context_macs task.pid (context_mac t task);
    match switch_to t next with
    | Ok _ ->
        Cpu.charge t.cpu exit_overhead_cycles;
        Cpu.charge t.cpu (Cpu.cost_profile t.cpu).Cost.eret;
        `Switched
    | Killed m ->
        (* the incoming task's switch frame failed authentication: kill
           that task and keep the system running *)
        logf t "scheduler: switch to pid %d failed (%s); killing it" next.pid m;
        mark_dead t next;
        `Victim_killed m
    | Panicked m -> `Panic m
  in
  let rec drive () =
    if Queue.is_empty runnable || !slices >= max_slices then ()
    else begin
      incr slices;
      let task = Queue.pop runnable in
      (* slice prologue runs in the kernel *)
      Cpu.set_el t.cpu El.El1;
      let switched =
        if t.current.pid = task.pid then `Switched
        else
          match switch_to t task with
          | Ok _ -> `Switched
          | Killed m ->
              logf t "scheduler: switch to pid %d failed (%s); killing it" task.pid m;
              mark_dead t task;
              `Victim_killed m
          | Panicked m -> `Panic m
      in
      match switched with
      | `Victim_killed m ->
          finish task (User_killed m);
          drive ()
      | `Panic m ->
          finish task (User_panicked m);
          Queue.clear runnable
      | `Switched ->
      let context_ok =
        if context_integrity && Cpu.has_pauth t.cpu then begin
          match Hashtbl.find_opt t.context_macs task.pid with
          | None -> true (* first slice: nothing saved yet *)
          | Some golden ->
              let ok = context_mac t task = golden in
              if not ok then begin
                logf t "context-integrity violation: pid %d saved state tampered"
                  task.pid;
                mark_dead t task;
                finish task (User_killed "context integrity: SIGKILL")
              end;
              ok
        end
        else true
      in
      if not context_ok then drive ()
      else begin
      restore_user_context t task;
      if Cpu.has_pauth t.cpu then begin
        Cpu.set_reg t.cpu (Insn.R 0) task.va;
        (match Cpu.call t.cpu t.xom.Xom.restore_addr with
        | Cpu.Sentinel_return -> ()
        | other -> failwith ("key restore: " ^ Cpu.stop_to_string other));
        restore_user_context t task
      end;
      Cpu.set_el t.cpu El.El0;
      run_slice task quantum
      end
    end
  and run_slice task budget =
    if budget <= 0 then begin
      (* quantum expired: rotate *)
      (match Queue.peek_opt runnable with
      | Some next -> (
          match preempt_to task next with
          | `Switched -> Queue.add task runnable
          | `Victim_killed m ->
              (* the victim is still at the queue head: retire it *)
              ignore (Queue.pop runnable);
              finish next (User_killed m);
              Queue.add task runnable
          | `Panic m ->
              finish task (User_panicked m);
              Queue.clear runnable)
      | None -> Queue.add task runnable);
      drive ()
    end
    else begin
      let insns_before = Cpu.insns_retired t.cpu in
      let used () = Int64.to_int (Int64.sub (Cpu.insns_retired t.cpu) insns_before) in
      match Cpu.run ~max_insns:budget t.cpu with
      | Cpu.Insn_limit -> run_slice task 0
      | Cpu.Svc nr when nr = Kbuild.sys_exit ->
          finish task (Exited (Cpu.reg t.cpu (Insn.R 0)));
          drive ()
      | Cpu.Svc nr ->
          let user_pc = Cpu.pc t.cpu in
          let saved = save_user_gprs t in
          let args =
            [ Cpu.reg t.cpu (Insn.R 0); Cpu.reg t.cpu (Insn.R 1); Cpu.reg t.cpu (Insn.R 2) ]
          in
          let spent = used () in
          (match syscall_gen ~trap_charged:true t ~nr ~args with
          | Ok result ->
              restore_user_gprs t saved;
              Cpu.set_reg t.cpu (Insn.R 0) result;
              Cpu.set_el t.cpu El.El0;
              Cpu.set_pc t.cpu user_pc;
              (* the user instructions before the trap consume quantum;
                 the kernel-side work does not *)
              run_slice task (budget - spent)
          | Killed m ->
              finish task (User_killed m);
              drive ()
          | Panicked m ->
              finish task (User_panicked m);
              Queue.clear runnable)
      | Cpu.Sentinel_return ->
          finish task (Exited (Cpu.reg t.cpu (Insn.R 0)));
          drive ()
      | Cpu.Hlt code ->
          finish task (User_killed (Printf.sprintf "hlt #%d in user mode" code));
          drive ()
      | Cpu.Brk code ->
          finish task (User_killed (Printf.sprintf "brk #%d" code));
          drive ()
      | Cpu.Fault { fault; pc } ->
          logf t "segfault: pid %d %s at pc=0x%Lx" task.pid
            (match fault with
            | Cpu.Mmu_fault f -> Mmu.fault_to_string f
            | Cpu.Undefined_instruction w -> Printf.sprintf "undefined insn 0x%08lx" w
            | Cpu.Hyp_denied sr | Cpu.El_denied sr -> "denied access to " ^ Sysreg.name sr)
            pc;
          mark_dead t task;
          finish task (User_killed "SIGSEGV");
          drive ()
      | Cpu.Eret_done -> run_slice task budget
    end
  in
  drive ();
  { exits = List.rev !exits; preemptions = !preemptions; slices = !slices }

(* SMP scheduling: per-CPU round-robin run queues driven by a
   cycle-interleaved host loop. Each scheduling round visits the cores
   in order and runs one quantum on each, so simulated time advances in
   lockstep while every core's kernel entries (key installs included)
   execute on that core's own register file. Every [balance_interval]
   rounds an imbalanced core rings the idlest core's doorbell with a
   Reschedule IPI; the receiver acknowledges it and pulls a task.
   Everything is driven by deterministic state, so a given seed and cpu
   count always produce the same exit order and cycle totals. *)

type smp_stats = {
  smp_exits : (int * int * user_exit) list;  (** cpu, pid, exit status *)
  smp_slices : int;
  smp_preemptions : int;
  smp_migrations : int;  (** tasks pulled across cores by IPIs *)
  smp_ipis : int;  (** doorbell rings during the run *)
  smp_offlined : int list;  (** cores quarantined during the run, in order *)
  per_cpu_cycles : int64 array;  (** each core's clock at the end *)
  makespan : int64;  (** busiest core's clock: parallel simulated time *)
}

let run_smp ?(quantum = 2000) ?(max_slices = 50_000) ?(balance_interval = 8)
    ?quarantine_after t ~tasks:scheduled =
  let n = Machine.cpus t.machine in
  let queues = Array.init n (fun _ -> Queue.create ()) in
  List.iteri (fun idx task -> Queue.add task queues.(idx mod n)) scheduled;
  let exits = ref [] in
  let slices = ref 0 in
  let preemptions = ref 0 in
  let migrations = ref 0 in
  let ipis_before = Machine.ipis_sent t.machine in
  let update_rq cid =
    let core = Machine.core t.machine cid in
    Percpu.set_rq_len core t.percpu.(cid).pc (Queue.length queues.(cid))
  in
  Array.iteri (fun cid _ -> update_rq cid) queues;
  let finish cid task status = exits := (cid, task.pid, status) :: !exits in
  (* One quantum of task [task] on core [cid]. *)
  let run_one_slice cid task =
    with_core t cid (fun () ->
        (* slice prologue is a kernel entry on this core *)
        Cpu.set_el t.cpu El.El1;
        enter_kernel_context t;
        let switched =
          if t.current.pid = task.pid then `Switched
          else
            match switch_to t task with
            | Ok _ ->
                Percpu.set_current t.cpu t.percpu.(cid).pc task.va;
                `Switched
            | Killed m ->
                (* the incoming task's switch frame failed authentication:
                   kill that task, keep the core running *)
                logcpu t "scheduler: switch to pid %d failed (%s); killing it" task.pid m;
                mark_dead t task;
                `Victim_killed m
            | Panicked m -> `Panic m
        in
        match switched with
        | `Victim_killed m -> `Done (User_killed m)
        | `Panic m -> `Panic m
        | `Switched ->
        restore_user_context t task;
        if Cpu.has_pauth t.cpu then begin
          Cpu.set_reg t.cpu (Insn.R 0) task.va;
          xom_key_call t ~domain:"user" ~err:"key restore: "
            t.xom.Xom.restore_addr;
          restore_user_context t task
        end;
        Cpu.set_el t.cpu El.El0;
        let preempt () =
          (* timer IRQ: save the user context, re-enter the kernel (the
             entry installs this core's keys like any other) *)
          Cpu.charge t.cpu (Cpu.cost_profile t.cpu).Cost.exception_entry;
          Cpu.charge t.cpu entry_overhead_cycles;
          save_user_context t task;
          Cpu.set_el t.cpu El.El1;
          enter_kernel_context t;
          `Preempted
        in
        let rec exec budget =
          if budget <= 0 then preempt ()
          else begin
            let insns_before = Cpu.insns_retired t.cpu in
            let used () =
              Int64.to_int (Int64.sub (Cpu.insns_retired t.cpu) insns_before)
            in
            match Cpu.run ~max_insns:budget t.cpu with
            | Cpu.Insn_limit -> preempt ()
            | Cpu.Svc nr when nr = Kbuild.sys_exit ->
                `Done (Exited (Cpu.reg t.cpu (Insn.R 0)))
            | Cpu.Svc nr ->
                let user_pc = Cpu.pc t.cpu in
                let saved = save_user_gprs t in
                let args =
                  [
                    Cpu.reg t.cpu (Insn.R 0);
                    Cpu.reg t.cpu (Insn.R 1);
                    Cpu.reg t.cpu (Insn.R 2);
                  ]
                in
                let spent = used () in
                (match syscall_gen ~trap_charged:true t ~nr ~args with
                | Ok result ->
                    restore_user_gprs t saved;
                    Cpu.set_reg t.cpu (Insn.R 0) result;
                    Cpu.set_el t.cpu El.El0;
                    Cpu.set_pc t.cpu user_pc;
                    exec (budget - spent)
                | Killed m -> `Done (User_killed m)
                | Panicked m -> `Panic m)
            | Cpu.Sentinel_return -> `Done (Exited (Cpu.reg t.cpu (Insn.R 0)))
            | Cpu.Hlt code ->
                `Done (User_killed (Printf.sprintf "hlt #%d in user mode" code))
            | Cpu.Brk code -> `Done (User_killed (Printf.sprintf "brk #%d" code))
            | Cpu.Fault { fault; pc } ->
                logcpu t "segfault: pid %d %s at pc=0x%Lx" task.pid
                  (match fault with
                  | Cpu.Mmu_fault f -> Mmu.fault_to_string f
                  | Cpu.Undefined_instruction w ->
                      Printf.sprintf "undefined insn 0x%08lx" w
                  | Cpu.Hyp_denied sr | Cpu.El_denied sr ->
                      "denied access to " ^ Sysreg.name sr)
                  pc;
                mark_dead t task;
                `Done (User_killed "SIGSEGV")
            | Cpu.Eret_done -> exec budget
          end
        in
        exec quantum)
  in
  (* Reschedule-IPI receive path: acknowledge the doorbell and pull one
     task from each requester that is still busier than we are. *)
  let drain_ipis cid =
    List.iter
      (fun ipi ->
        let requesters = Machine.ack t.machine ~cpu:cid ipi in
        let core = Machine.core t.machine cid in
        Percpu.count_ipi core t.percpu.(cid).pc;
        Cpu.charge core (Cpu.cost_profile core).Cost.exception_entry;
        match ipi with
        | Machine.Reschedule ->
            Percpu.count_resched core t.percpu.(cid).pc;
            List.iter
              (fun src ->
                if Queue.length queues.(src) > Queue.length queues.(cid) + 1 then
                  match Queue.take_opt queues.(src) with
                  | Some pulled ->
                      Queue.add pulled queues.(cid);
                      incr migrations;
                      update_rq src;
                      update_rq cid;
                      logcpu t "pulled pid %d from cpu%d" pulled.pid src
                  | None -> ())
              requesters
        | Machine.Stop | Machine.Call_function -> ())
      (Machine.pending t.machine ~cpu:cid)
  in
  (* Per-CPU quarantine: a core that has accumulated [quarantine_after]
     PAC failures is taken offline — it stops scheduling, and its queue
     migrates round-robin onto the remaining online cores. The last
     online core is never quarantined. *)
  let offline = Array.make n false in
  let offlined = ref [] in
  let online_count () =
    Array.fold_left (fun acc o -> if o then acc else acc + 1) 0 offline
  in
  let quarantine_check cid =
    match quarantine_after with
    | Some limit
      when (not offline.(cid))
           && online_count () > 1
           && C.Bruteforce.failures_on t.bruteforce ~cpu:cid >= limit ->
        offline.(cid) <- true;
        offlined := !offlined @ [ cid ];
        (let core = Machine.core t.machine cid in
         match Cpu.telemetry core with
         | Some s ->
             Telemetry.Sink.emit s ~ts:(Cpu.cycles core)
               (Telemetry.Event.Quarantine { victim = cid })
         | None -> ());
        logf t "cpu%d: quarantined after %d PAC failures; offlining" cid
          (C.Bruteforce.failures_on t.bruteforce ~cpu:cid);
        let targets =
          List.filter (fun c -> not offline.(c)) (List.init n (fun c -> c))
        in
        let ti = ref 0 in
        while not (Queue.is_empty queues.(cid)) do
          let dst = List.nth targets (!ti mod List.length targets) in
          incr ti;
          let task = Queue.pop queues.(cid) in
          Queue.add task queues.(dst);
          incr migrations;
          update_rq dst;
          logf t "cpu%d: migrated pid %d to cpu%d" cid task.pid dst
        done;
        update_rq cid
    | _ -> ()
  in
  (* Periodic load balancing: the busiest online core rings the idlest. *)
  let balance () =
    let busiest = ref (-1) and idlest = ref (-1) in
    Array.iteri
      (fun cid q ->
        if not offline.(cid) then begin
          if !busiest < 0 || Queue.length q > Queue.length queues.(!busiest) then
            busiest := cid;
          if !idlest < 0 || Queue.length q < Queue.length queues.(!idlest) then
            idlest := cid
        end)
      queues;
    if
      !busiest >= 0 && !idlest >= 0
      && Queue.length queues.(!busiest) - Queue.length queues.(!idlest) >= 2
    then Machine.send_ipi t.machine ~src:!busiest ~dst:!idlest Machine.Reschedule
  in
  let any_runnable () = Array.exists (fun q -> not (Queue.is_empty q)) queues in
  let round = ref 0 in
  while (not t.panicked) && any_runnable () && !slices < max_slices do
    for cid = 0 to n - 1 do
      if (not t.panicked) && !slices < max_slices && not offline.(cid) then begin
        drain_ipis cid;
        (match Queue.take_opt queues.(cid) with
        | None -> ()
        | Some task ->
            incr slices;
            (match run_one_slice cid task with
            | `Done status -> finish cid task status
            | `Preempted ->
                incr preemptions;
                Queue.add task queues.(cid)
            | `Panic m -> finish cid task (User_panicked m));
            update_rq cid);
        quarantine_check cid
      end
    done;
    incr round;
    if !round mod balance_interval = 0 then balance ()
  done;
  {
    smp_exits = List.rev !exits;
    smp_slices = !slices;
    smp_preemptions = !preemptions;
    smp_migrations = !migrations;
    smp_ipis = Machine.ipis_sent t.machine - ipis_before;
    smp_offlined = !offlined;
    per_cpu_cycles =
      Array.init n (fun cid -> Cpu.cycles (Machine.core t.machine cid));
    makespan = Machine.max_cycles t.machine;
  }

(* Boot. *)

let boot ?(config = C.Config.full) ?(seed = 42L) ?(has_pauth = true)
    ?(cost = Cost.cortex_a53) ?(cpus = 1) ?(telemetry = false) ?(icache = true)
    ?tier () =
  (match config.C.Config.scheme with
  | C.Modifier.Chained ->
      failwith
        "System.boot: the chained scheme cannot prefabricate switch frames and is \
         evaluated as a microbenchmark ablation only (see bench a5)"
  | C.Modifier.No_cfi | C.Modifier.Sp_only | C.Modifier.Parts _ | C.Modifier.Camouflage
    ->
      ());
  if cpus < 1 || cpus > 16 then invalid_arg "System.boot: cpus must be in 1..16";
  let cipher = Qarma.Block.create () in
  let machine =
    Machine.create ~cost ~has_pauth ~cipher ~cpus ~telemetry ~icache ?tier ()
  in
  let cpu = Machine.boot_core machine in
  (* Bootloader: map the kernel's working memory (shared by all cores). *)
  Kmem.map_kernel_region cpu ~base:Layout.heap_base ~bytes:Layout.heap_bytes Mmu.rw;
  Kmem.map_kernel_region cpu ~base:Layout.stack_area_base
    ~bytes:(Layout.max_task_slots * Layout.task_stack_bytes)
    Mmu.rw;
  (* The bootloader configures every core's SCTLR before lockdown (key
     enable bits are per-core state, like the key registers). *)
  if has_pauth then begin
    let sctlr =
      List.fold_left
        (fun acc k -> Camo_util.Val64.set_bit (Sysreg.sctlr_enable_bit k) true acc)
        0L
        Sysreg.[ IA; IB; DA; DB ]
    in
    List.iter
      (fun core -> Cpu.set_sysreg core Sysreg.SCTLR_EL1 sctlr)
      (Machine.cores machine)
  end;
  let hyp = Hypervisor.install cpu in
  (* The hypervisor locks the MMU-control registers of every core; the
     stage-2 tables are already shared through the common Mmu.t. *)
  List.iter
    (fun core ->
      if Cpu.id core <> 0 then Cpu.set_sysreg_lock core (Hypervisor.is_locked_register hyp))
    (Machine.cores machine);
  let rng = Camo_util.Rng.create seed in
  let xom = Xom.install cpu hyp ~rng ~mode:config.C.Config.mode in
  let registry = C.Pointer_integrity.create_registry () in
  Kobject.register_protected_members registry;
  let t =
    {
      machine;
      cpu;
      active = 0;
      percpu = [||];
      config;
      registry;
      hyp;
      xom;
      bruteforce = C.Bruteforce.create ~threshold:config.C.Config.bruteforce_threshold;
      kernel =
        (* placeholder; replaced below once the image is loaded *)
        {
          Kelf.Loader.object_name = "";
          text_layout = Asm.assemble (Asm.create ()) ~base:Layout.text_base;
          data_symbols = [];
          text_base = Layout.text_base;
          text_bytes = 0;
          rodata_base = Layout.rodata_base;
          rodata_bytes = 0;
          data_base = Layout.data_base;
          data_bytes = 0;
          lint_warnings = [];
        };
      rng;
      current = { va = 0L; slot = 0; pid = 0 };
      tasks = [];
      next_pid = 1;
      next_stack_slot = 0;
      module_alloc = Layout.module_area_base;
      log = [];
      panicked = false;
      oopses = [];
      table_mac_golden = 0L;
      context_macs = Hashtbl.create 16;
      context_key = Pac.{ hi = 0L; lo = 0L };
    }
  in
  (* Install the kernel keys before anything signs pointers (the loader
     signs the .pauth_static entries). *)
  if has_pauth then install_kernel_keys t;
  let kernel_env =
    {
      (loader_env t) with
      Kelf.Loader.place =
        (fun ~text_bytes:_ ~rodata_bytes:_ ~data_bytes:_ ->
          (Layout.text_base, Layout.rodata_base, Layout.data_base));
      (* the audited bootloader routines are linked like firmware calls *)
      extra_symbols =
        [
          ("kernel_key_setter", xom.Xom.setter_addr);
          ("user_key_restore", xom.Xom.restore_addr);
          ("uaccess_authda", xom.Xom.uaccess_authda_addr);
        ];
    }
  in
  let kernel_obj = Kbuild.build config registry in
  let kernel =
    match
      Kelf.Loader.load ~cpu ~config ~registry ~env:kernel_env kernel_obj
    with
    | Result.Ok placed -> placed
    | Result.Error e -> failwith ("kernel image rejected: " ^ Kelf.Loader.error_to_string e)
  in
  t.kernel <- kernel;
  List.iter
    (fun d -> logf t "paclint: %s" (Paclint.Diag.to_string d))
    kernel.Kelf.Loader.lint_warnings;
  let chi, clo = Camo_util.Rng.key128 rng in
  t.context_key <- Pac.{ hi = chi; lo = clo };
  if has_pauth then record_table_mac t;
  logf t "camouflage kernel booted (%s)" (C.Config.name config);
  let init = create_task t in
  t.current <- init;
  (* SMP bring-up: a per-CPU data area for every core, then secondary
     cores come online one by one. Each secondary executes the XOM key
     setter itself — the key registers are per-core, so the boot core's
     install does nothing for its siblings — and parks on a private idle
     task. With [cpus = 1] nothing here changes observable state, so
     single-core pid numbering is untouched. *)
  t.percpu <-
    Array.init cpus (fun cid ->
        let core = Machine.core machine cid in
        let pc = Percpu.init core ~cid in
        Percpu.set_current core pc init.va;
        { pc; cur = init; idle = None });
  for cid = 1 to cpus - 1 do
    with_core t cid (fun () ->
        Cpu.set_el t.cpu El.El1;
        if kernel_uses_pauth t then install_kernel_keys t;
        let idle = create_task t in
        t.percpu.(cid).idle <- Some idle;
        t.current <- idle;
        Percpu.set_current t.cpu t.percpu.(cid).pc idle.va;
        Percpu.set_idle t.cpu t.percpu.(cid).pc idle.va;
        Cpu.set_sp_of t.cpu El.El1 (task_stack_top idle);
        logf t "cpu%d online (idle pid %d)" cid idle.pid)
  done;
  t

(* System snapshots: the machine snapshot (memory CoW + cores + GIC +
   telemetry) plus every host-side kernel field the guest cannot see —
   scheduler mirrors, task lists, the console/oops logs, the RNG stream
   position, brute-force accounting, and the held-out attestation MACs.
   Immutable-after-boot structures (config, registry, hypervisor, XOM
   layout, per-CPU bases) are shared, not copied. *)
type snapshot = {
  snap_machine : Machine.snapshot;
  snap_active : int;
  snap_percpu : (task * task option) array;
  snap_kernel : Kelf.Loader.placed;
  snap_rng : int64;
  snap_current : task;
  snap_tasks : task list;
  snap_next_pid : int;
  snap_next_stack_slot : int;
  snap_module_alloc : int64;
  snap_log : (int64 * string) list;
  snap_panicked : bool;
  snap_oopses : oops list;
  snap_table_mac_golden : int64;
  snap_context_macs : (int, int64) Hashtbl.t;
  snap_context_key : Pac.key;
  snap_bruteforce : C.Bruteforce.captured;
}

let snapshot t =
  {
    snap_machine = Machine.snapshot t.machine;
    snap_active = t.active;
    snap_percpu = Array.map (fun st -> (st.cur, st.idle)) t.percpu;
    snap_kernel = t.kernel;
    snap_rng = Camo_util.Rng.state t.rng;
    snap_current = t.current;
    snap_tasks = t.tasks;
    snap_next_pid = t.next_pid;
    snap_next_stack_slot = t.next_stack_slot;
    snap_module_alloc = t.module_alloc;
    snap_log = t.log;
    snap_panicked = t.panicked;
    snap_oopses = t.oopses;
    snap_table_mac_golden = t.table_mac_golden;
    snap_context_macs = Hashtbl.copy t.context_macs;
    snap_context_key = t.context_key;
    snap_bruteforce = C.Bruteforce.capture t.bruteforce;
  }

let restore t s =
  Machine.restore t.machine s.snap_machine;
  t.active <- s.snap_active;
  t.cpu <- Machine.core t.machine s.snap_active;
  Array.iteri
    (fun i (cur, idle) ->
      t.percpu.(i).cur <- cur;
      t.percpu.(i).idle <- idle)
    s.snap_percpu;
  t.kernel <- s.snap_kernel;
  Camo_util.Rng.set_state t.rng s.snap_rng;
  t.current <- s.snap_current;
  t.tasks <- s.snap_tasks;
  t.next_pid <- s.snap_next_pid;
  t.next_stack_slot <- s.snap_next_stack_slot;
  t.module_alloc <- s.snap_module_alloc;
  t.log <- s.snap_log;
  t.panicked <- s.snap_panicked;
  t.oopses <- s.snap_oopses;
  t.table_mac_golden <- s.snap_table_mac_golden;
  Hashtbl.reset t.context_macs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.context_macs k v) s.snap_context_macs;
  t.context_key <- s.snap_context_key;
  C.Bruteforce.restore t.bruteforce s.snap_bruteforce
