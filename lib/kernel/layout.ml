let kernel_prefix = 0xffff000000000000L

(* Kernel VAs drop their sign-extension prefix; user VAs are offset into
   the upper half of the PA space so the two ranges never share frames. *)
let pa_of_va va =
  if Camo_util.Val64.bit 55 va then Int64.logand va 0x0000ffffffffffffL
  else Int64.logor va 0x0000800000000000L

let xom_base = 0xffff0000000f0000L
let text_base = 0xffff000000100000L
let rodata_base = 0xffff000000400000L
let data_base = 0xffff000000500000L
let heap_base = 0xffff000000600000L
let heap_bytes = 0x100000
let stack_area_base = 0xffff000001000000L
let module_area_base = 0xffff000002000000L

let task_stack_bytes = 16 * 1024

(* Stack slots mapped at boot: enough for init, one idle task per core
   of the largest supported machine, and a generous task population. *)
let max_task_slots = 64

let task_stack_top ~slot =
  Int64.add stack_area_base (Int64.of_int ((slot + 1) * task_stack_bytes))

(* Per-CPU data areas (one page per core, Linux's percpu segment in
   miniature), between the stack area and the module area. *)
let percpu_base = 0xffff000001c00000L
let percpu_stride = 4096

let percpu_area ~cpu = Int64.add percpu_base (Int64.of_int (cpu * percpu_stride))

let user_text_base = 0x0000000000400000L
let user_stack_top = 0x00007ffffff00000L
let user_data_base = 0x0000000000800000L

let round_pages bytes = (bytes + 4095) / 4096 * 4096
