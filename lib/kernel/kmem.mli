(** Host-side access to kernel memory through the identity map.

    These accessors bypass the MMU permission checks — they model the
    orchestrated parts of the kernel (allocator bookkeeping, boot-time
    initialization), not attacker capabilities. Attacker memory access
    goes through the vulnerable syscalls, which execute on the machine
    and honour translation. *)

open Aarch64

val read64 : Cpu.t -> int64 -> int64
val write64 : Cpu.t -> int64 -> int64 -> unit
val read32 : Cpu.t -> int64 -> int32
val write32 : Cpu.t -> int64 -> int32 -> unit
val read_string : Cpu.t -> int64 -> int -> string
val blit_string : Cpu.t -> int64 -> string -> unit

(** [map_kernel_region cpu ~base ~bytes perm] — stage-1 map a kernel
    range (EL1-only). *)
val map_kernel_region : Cpu.t -> base:int64 -> bytes:int -> Mmu.perm -> unit

(** [map_user_region cpu ~base ~bytes perm] — stage-1 map a user range:
    EL0 gets [perm]; EL1 gets read/write (kernel uaccess). *)
val map_user_region : Cpu.t -> base:int64 -> bytes:int -> Mmu.perm -> unit

(** [unmap_region cpu ~base ~bytes] — remove the stage-1 mappings of a
    range (module unload). *)
val unmap_region : Cpu.t -> base:int64 -> bytes:int -> unit
