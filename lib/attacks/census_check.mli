(** Static/dynamic cross-validation of the modifier-collision census.

    The census claims a cross-function (key, modifier-class) collision
    class is a live substitution gadget; the cross-task replay attack is
    that substitution performed for real. [run] compares the two on one
    configuration, [cross_validate] on the canonical pair: PARTS (one
    SP-dependent class, replay must be ACCEPTED) and full Camouflage
    (no such class, the same replay must be rejected). *)

type verdict = {
  config_name : string;
  predicted_pairs : int;
      (** cross-function substitution pairs in SP-dependent collision
          classes — the frame-replay gadgets the census predicts *)
  outcome : Replay.outcome;
  consistent : bool;  (** (predicted_pairs > 0) = (outcome is Accepted) *)
}

(** Frame-replay gadget pairs a census predicts (pairs summed over
    SP-dependent collision classes). *)
val frame_replay_pairs : Paclint.Census.t -> int

val run : seed:int64 -> Camouflage.Config.t -> verdict

val cross_validate : ?seed:int64 -> unit -> verdict list

val verdict_to_string : verdict -> string
