open Aarch64
module K = Kernel

let outcome_to_result = function
  | K.System.Ok v -> Result.Ok v
  | K.System.Killed m -> Result.Error ("killed: " ^ m)
  | K.System.Panicked m -> Result.Error ("panicked: " ^ m)

let kread sys addr =
  outcome_to_result (K.System.syscall sys ~nr:K.Kbuild.sys_vuln_read ~args:[ addr ])

let kwrite sys addr value =
  match
    outcome_to_result (K.System.syscall sys ~nr:K.Kbuild.sys_vuln_write ~args:[ addr; value ])
  with
  | Result.Ok _ -> Result.Ok ()
  | Result.Error _ as e -> e

(* The attacker's own user-space buffer, used as the source of sprays. *)
let attacker_buf sys =
  let base = Int64.add K.Layout.user_data_base 0x3000L in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base ~bytes:0x10000
    Mmu.rw;
  base

let ( let* ) = Result.bind

let spray sys ~bytes =
  let buf = attacker_buf sys in
  K.Kmem.blit_string (K.System.cpu sys) buf bytes;
  let pipe_state = K.System.kernel_symbol sys "pipe_state" in
  let pipe_buf = K.System.kernel_symbol sys "pipe_buf" in
  let* head = kread sys pipe_state in
  let dest = Int64.add pipe_buf (Int64.logand head 0xfffL) in
  let* written =
    outcome_to_result
      (K.System.syscall sys ~nr:K.Kbuild.sys_pipe_write
         ~args:[ buf; Int64.of_int (String.length bytes) ])
  in
  if Int64.to_int written <> String.length bytes then Result.Error "short pipe write"
  else Result.Ok dest

(* Every signed pointer the kernel currently holds for the task
   population: the PAC-protected members of each task struct plus the
   f_ops pointer of each task's console file. The same addresses an
   attack would target are exactly where an injected bit flip in a PAC
   field is interesting. *)
let signed_pointer_sites sys =
  let cpu = K.System.cpu sys in
  List.concat_map
    (fun (task : K.System.task) ->
      let field name off =
        ( Printf.sprintf "task%d.%s" task.K.System.pid name,
          Int64.add task.K.System.va (Int64.of_int off) )
      in
      let console_file =
        K.Kmem.read64 cpu
          (Int64.add task.K.System.va (Int64.of_int (K.Kobject.Task.off_fd_table + 8)))
      in
      let file_sites =
        if console_file = 0L then []
        else
          [
            ( Printf.sprintf "task%d.file.f_ops" task.K.System.pid,
              Int64.add console_file (Int64.of_int K.Kobject.File.off_f_ops) );
          ]
      in
      field "kernel_sp" K.Kobject.Task.off_kernel_sp
      :: field "cred" K.Kobject.Task.off_cred
      :: file_sites)
    (K.System.tasks sys)

let spray_words sys ~words =
  let b = Buffer.create (8 * List.length words) in
  List.iter
    (fun w ->
      for byte = 0 to 7 do
        Buffer.add_char b
          (Char.chr
             (Int64.to_int (Int64.logand (Int64.shift_right_logical w (8 * byte)) 0xffL)))
      done)
    words;
  spray sys ~bytes:(Buffer.contents b)
