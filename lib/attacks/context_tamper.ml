open Aarch64
module K = Kernel

type outcome = Diverted of { exit_code : int64 } | Detected | Failed of string

let victim_program () =
  let prog = Asm.create () in
  (* a long-running compute loop that eventually exits 0 *)
  Asm.add_function prog ~name:"worker"
    [
      Asm.ins (Insn.Movz (Insn.R 9, 0xffff, 0));
      Asm.label "loop";
      Asm.ins (Insn.Sub_imm (Insn.R 9, Insn.R 9, 1));
      Asm.cbnz_to (Insn.R 9) "loop";
      Asm.ins (Insn.Movz (Insn.R 0, 0, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  (* the attacker's landing pad: exits with a recognizable code *)
  Asm.add_function prog ~name:"evil"
    [ Asm.ins (Insn.Movz (Insn.R 0, 0x666, 0)); Asm.ins (Insn.Svc K.Kbuild.sys_exit) ];
  prog

let run sys ~protect =
  let layout = K.System.map_user_program sys (victim_program ()) in
  let worker = Asm.symbol layout "worker" in
  let evil = Asm.symbol layout "evil" in
  let t1 = K.System.spawn_user_task sys ~entry:worker in
  let t2 = K.System.spawn_user_task sys ~entry:worker in
  (* Phase 1: run a few short slices so both tasks get preempted with
     saved contexts. *)
  let phase1 =
    K.System.run_scheduled ~quantum:400 ~max_slices:4 ~context_integrity:protect sys
      ~tasks:[ t1; t2 ]
  in
  if phase1.K.System.exits <> [] then Failed "victims finished before the attack"
  else begin
    (* Tamper with the sleeping task's saved PC through the kernel bug. *)
    let saved_pc_field =
      Int64.add t2.K.System.va (Int64.of_int K.Kobject.Task.off_saved_pc)
    in
    match Primitives.kwrite sys saved_pc_field evil with
    | Result.Error m -> Failed ("kwrite: " ^ m)
    | Result.Ok () -> (
        (* Phase 2: resume the schedule. *)
        let phase2 =
          K.System.run_scheduled ~quantum:400 ~context_integrity:protect sys
            ~tasks:[ t1; t2 ]
        in
        match List.assoc_opt t2.K.System.pid phase2.K.System.exits with
        | Some (K.System.Exited code) when code = 0x666L -> Diverted { exit_code = code }
        | Some (K.System.User_killed m)
          when String.length m >= 7 && String.sub m 0 7 = "context" ->
            Detected
        | Some (K.System.Exited code) ->
            Failed (Printf.sprintf "victim exited normally (%Ld)" code)
        | Some (K.System.User_killed m) -> Failed ("killed: " ^ m)
        | Some (K.System.User_panicked m) -> Failed ("panic: " ^ m)
        | Some (K.System.Watchdog_expired _ as e) -> Failed (K.System.user_exit_to_string e)
        | None -> Failed "victim never finished")
  end

let outcome_to_string = function
  | Diverted { exit_code } ->
      Printf.sprintf "DIVERTED: preempted task resumed in attacker code (exit 0x%Lx)"
        exit_code
  | Detected -> "DETECTED: saved-context MAC mismatch, task killed before resumption"
  | Failed m -> "attack failed: " ^ m
