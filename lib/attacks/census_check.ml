module C = Camouflage
module K = Kernel

(* Static/dynamic cross-validation of the gadget census.

   The census's headline claim is that a cross-function (key,
   modifier-class) collision class is a live substitution gadget. The
   replay attack is exactly such a substitution: a return address signed
   in one task's switch frame is planted into a congruent frame of
   another task. So the two must agree per configuration:

   - a scheme whose backward-edge sign sites fall into one SP-dependent
     collision class (sp-only, PARTS with its fixed image id) must both
     be *reported* by the census and *demonstrated* by the attack
     (ACCEPTED);
   - a scheme with address-diversified modifiers (Camouflage) must show
     no such class, and the same attack must die on the AUT (REJECTED).

   A disagreement in either direction is an analyzer bug: a reported
   pair that cannot be demonstrated is a false positive, an undetected
   scheme that accepts the replay is a missed gadget. *)

type verdict = {
  config_name : string;
  predicted_pairs : int;
      (** cross-function substitution pairs in SP-dependent collision
          classes — the frame-replay gadgets the census predicts *)
  outcome : Replay.outcome;
  consistent : bool;
}

let frame_replay_pairs (census : Paclint.Census.t) =
  List.fold_left
    (fun acc (c : Paclint.Census.cls_report) ->
      match c.Paclint.Census.dynamism with
      | Paclint.Diag.Sp_dependent -> acc + c.Paclint.Census.pairs
      | _ -> acc)
    0 census.Paclint.Census.classes

let run ~seed config =
  let report = K.Kbuild.lint_report config in
  let predicted = frame_replay_pairs report.K.Kbuild.census in
  let sys = K.System.boot ~config ~seed () in
  let outcome = Replay.cross_task_switch_frame sys in
  let demonstrated = match outcome with Replay.Accepted _ -> true | _ -> false in
  {
    config_name = C.Config.name config;
    predicted_pairs = predicted;
    outcome;
    consistent = predicted > 0 = demonstrated;
  }

(* The acceptance pair: one colliding scheme demonstrated live, one
   non-colliding scheme whose identical attack must fail. *)
let cross_validate ?(seed = 42L) () =
  [
    run ~seed { C.Config.backward_only with scheme = C.Modifier.Parts 0x7357L };
    run ~seed C.Config.full;
  ]

let verdict_to_string v =
  Printf.sprintf "%-40s predicted %4d frame-replay pairs | replay %s | %s"
    v.config_name v.predicted_pairs
    (match v.outcome with
    | Replay.Accepted _ -> "ACCEPTED"
    | Replay.Rejected -> "rejected"
    | Replay.Failed m -> "failed: " ^ m)
    (if v.consistent then "CONSISTENT" else "MISMATCH")
