(** Attacker capabilities under the paper's threat model (Section 3.1):
    full control of an unprivileged process and a memory-corruption bug
    in the syscall interface giving arbitrary kernel-memory read and
    write. Write-protected memory (text, rodata, XOM) remains out of
    reach — those accesses fault on the machine. *)

val kread : Kernel.System.t -> int64 -> (int64, string) result

val kwrite : Kernel.System.t -> int64 -> int64 -> (unit, string) result

(** [spray sys ~bytes] — place attacker-controlled bytes into kernel
    memory at a known address using the pipe buffer, returning the
    kernel address of the sprayed data. *)
val spray : Kernel.System.t -> bytes:string -> (int64, string) result

(** [spray_words sys ~words] — same, for 64-bit words. *)
val spray_words : Kernel.System.t -> words:int64 list -> (int64, string) result

(** [signed_pointer_sites sys] — the kernel addresses of every
    PAC-protected pointer currently live for the task population
    (each task's signed [kernel_sp] and [cred] members, and the signed
    [f_ops] of its console file), with a human-readable label. These
    are the natural targets both for pointer-replacement attacks and
    for fault-injection campaigns flipping bits in a PAC field. *)
val signed_pointer_sites : Kernel.System.t -> (string * int64) list
