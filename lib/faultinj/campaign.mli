(** Seeded fault-injection campaigns over the SMP kernel.

    A campaign boots a fresh system per trial, runs a fixed multi-task
    console workload once uninjected (the {e golden} run), then replays
    it [trials] times, each time with one randomly drawn fault spec
    armed ({!Injector}). Trial outcomes are classified against the
    golden run:

    - [Detected_by_pac]: a task was killed on a PAC authentication
      failure (the poisoned-address path),
    - [Detected_by_mmu]: a task was killed on an ordinary translation
      fault or kernel oops,
    - [Panicked]: the system halted (brute-force threshold or explicit
      panic) — fail-stop, counted as detected,
    - [Task_killed]: a task died for another policed reason (watchdog,
      context-integrity, plain SIGKILL),
    - [Silent_corruption]: everything "succeeded" but the exits or
      console output differ from the golden run (or work was lost),
    - [Benign]: indistinguishable from the golden run.

    Everything derives from the single campaign seed: trial [i] uses a
    splitmix64 stream seeded with [seed ⊕ mix(i)], so the same seed and
    parameters give a byte-identical report. *)

type outcome =
  | Detected_by_pac
  | Detected_by_mmu
  | Panicked
  | Task_killed
  | Silent_corruption
  | Benign

val outcome_name : outcome -> string

type trial = {
  index : int;
  spec : Injector.spec;
  spec_desc : string;
  fired : bool;
  outcome : outcome;
  detail : string;  (** kill message / deviation note, [""] when benign *)
  makespan : int64;
  offlined : int list;
}

type report = {
  seed : int64;
  trials : int;
  config_name : string;
  cpus : int;
  tasks : int;
  rounds : int;
  quantum : int;
  quarantine_after : int option;
  golden_makespan : int64;
  fired_count : int;
  n_detected_by_pac : int;
  n_detected_by_mmu : int;
  n_panicked : int;
  n_task_killed : int;
  n_silent : int;
  n_benign : int;
  detection_rate : float;
      (** detected / (detected + silent), over trials whose fault had any
          effect; [1.0] when no trial had an effect *)
  mean_makespan : float;
  trial_list : trial list;
}

(** The workload every trial runs per task: [rounds] iterations of
    {e write(1, "xx", 2); getpid}, exiting with the completed round
    count — console output and exit codes make silent corruption
    observable. *)
val workload_program : rounds:int -> Aarch64.Asm.program

(** The uninjected reference run trials are classified against. Plain
    immutable data, so a fleet can compute it once and share it
    read-only across worker domains. *)
type golden = {
  g_exits : (int * Kernel.System.user_exit) list;  (** sorted by pid *)
  g_console : string;
  g_makespan : int64;
}

val golden_run :
  ?config:Camouflage.Config.t ->
  ?cpus:int ->
  ?tasks:int ->
  ?rounds:int ->
  ?quantum:int ->
  ?tier:Aarch64.Cpu.tier ->
  seed:int64 ->
  unit ->
  golden

(** Telemetry harvested from one trial's machine when the trial booted
    with [~telemetry:true]: the merged per-core counter file, an
    event-ring summary, and the per-kind span latency histograms. Fold
    with {!Telemetry.Counters.merge} / {!Telemetry.Span.merge_histograms}
    to build fleet-wide views. [jt_ring] carries the raw event stream
    only when the trial was harvested with [keep_events] (Chrome trace
    lanes); it is [[]] otherwise so bulk campaigns stay lean. *)
type job_telemetry = {
  jt_counters : Telemetry.Counters.snapshot;
  jt_events : int;
  jt_dropped : int;
  jt_hists : (Telemetry.Span.kind * Telemetry.Hist.t) list;
  jt_ring : Telemetry.Event.t list;
}

(** [run_random_trial ~golden ~seed ~index ()] — trial [index] of the
    campaign keyed by [seed]: exactly what {!run} executes at that index.
    The per-trial RNG stream depends only on [(seed, index)], so any
    partition of the index space over any number of workers replays the
    identical trials. [telemetry] (default [false]) boots the trial
    machine with telemetry — pure observation, the trial outcome is
    bit-identical either way — and returns the harvested summary. *)
val run_random_trial :
  ?config:Camouflage.Config.t ->
  ?cpus:int ->
  ?tasks:int ->
  ?rounds:int ->
  ?quantum:int ->
  ?quarantine_after:int ->
  ?telemetry:bool ->
  ?tier:Aarch64.Cpu.tier ->
  golden:golden ->
  seed:int64 ->
  index:int ->
  unit ->
  trial * job_telemetry option

(** A snapshot-forked campaign session: one boot + workload setup,
    captured with {!Kernel.System.snapshot}, plus the golden run. Each
    trial restores the post-setup snapshot instead of re-booting, which
    is bit-identical to a fresh boot (restore also clears trial-armed
    injector hooks) but an order of magnitude cheaper. A session wraps
    one mutable system: callers must not share it across domains —
    fleet workers each create their own. *)
type session

val create_session :
  ?config:Camouflage.Config.t ->
  ?cpus:int ->
  ?tasks:int ->
  ?rounds:int ->
  ?quantum:int ->
  ?telemetry:bool ->
  ?tier:Aarch64.Cpu.tier ->
  seed:int64 ->
  unit ->
  session

val session_golden : session -> golden

(** State fingerprint ({!Snapshot.Fingerprint.of_system}) taken right
    after the golden run — the replay log's identity anchor. *)
val session_golden_fingerprint : session -> string

val session_system : session -> Kernel.System.t

type trial_result = {
  tr_trial : trial;
  tr_telemetry : job_telemetry option;
  tr_fingerprint : string;  (** post-trial system state *)
}

(** [run_random_trial_in ses ~index ()] — the session-forked equivalent
    of {!run_random_trial}: restores the base snapshot, draws the
    [(seed, index)]-keyed spec, arms it and runs. Produces the identical
    trial record, plus the post-trial state fingerprint that record mode
    writes into the replay log. [keep_events] (default [false]) copies
    the trial's raw event stream into [jt_ring] for trace-lane capture. *)
val run_random_trial_in :
  session ->
  ?quarantine_after:int ->
  ?keep_events:bool ->
  index:int ->
  unit ->
  trial_result

(** [report_of_trials ~seed ~golden trials] — aggregate classified
    trials into a campaign report. All aggregates (counts, rates, mean
    makespan) are computed from the list in the order given; pass trials
    sorted by index to get the byte-identical report the sequential
    {!run} produces. *)
val report_of_trials :
  ?config_name:string ->
  ?cpus:int ->
  ?tasks:int ->
  ?rounds:int ->
  ?quantum:int ->
  ?quarantine_after:int ->
  seed:int64 ->
  golden:golden ->
  trial list ->
  report

(** [run_trial ~seed ~spec ()] — boot, arm [spec] (given the booted
    system, the mapped workload layout and the spawned tasks — so tests
    can compute concrete addresses), run, classify. [index] only labels
    the returned record. *)
val run_trial :
  ?config:Camouflage.Config.t ->
  ?cpus:int ->
  ?tasks:int ->
  ?rounds:int ->
  ?quantum:int ->
  ?quarantine_after:int ->
  ?tier:Aarch64.Cpu.tier ->
  ?index:int ->
  seed:int64 ->
  spec:
    (Kernel.System.t -> Aarch64.Asm.layout -> Kernel.System.task list -> Injector.spec) ->
  unit ->
  trial

(** [run ~seed ~trials ()] — the full campaign: golden run plus
    [trials] randomly-drawn faults. *)
val run :
  ?config:Camouflage.Config.t ->
  ?config_name:string ->
  ?cpus:int ->
  ?tasks:int ->
  ?rounds:int ->
  ?quantum:int ->
  ?quarantine_after:int ->
  ?tier:Aarch64.Cpu.tier ->
  seed:int64 ->
  trials:int ->
  unit ->
  report

(** Deterministic JSON rendering: fixed field order, fixed float
    formatting — the same report always serializes to the same bytes.
    [trial_detail] (default [true]) includes the per-trial array. *)
val report_to_json : ?trial_detail:bool -> report -> string

val report_to_string : report -> string

(** Per-CPU quarantine demonstration: two cores, a stuck-at bit flip in
    core 1's data-key register (armed on core 1 only), brute-force
    threshold 3. The baseline run panics when core 1's repeated PAC
    failures cross the threshold; with [quarantine_after 2] the kernel
    offlines core 1 after two failures, migrates its queue to core 0 and
    every surviving task completes. *)
type demo = {
  demo_spec : string;
  baseline_panicked : bool;
  baseline_completed : int;  (** clean exits without quarantine *)
  baseline_failures : int;
  quarantine_panicked : bool;
  quarantine_completed : int;
  quarantine_killed : int;
  quarantine_offlined : int list;
}

val quarantine_demo : ?seed:int64 -> unit -> demo

val demo_to_string : demo -> string
