module C = Camouflage
module L = Snapshot.Log

(* Every configuration the front ends can name. The CLI hands reports
   the display name ([Config.name]); serve hands them the request
   token — a recorded log may carry either, so resolve both. *)
let known_configs =
  [
    ("full", C.Config.full);
    ("backward", C.Config.backward_only);
    ("compat", C.Config.compat);
    ("none", C.Config.none);
    ("sp-only", { C.Config.backward_only with C.Config.scheme = C.Modifier.Sp_only });
    ("parts", { C.Config.backward_only with C.Config.scheme = C.Modifier.Parts 0x7357L });
    ("chained", { C.Config.backward_only with C.Config.scheme = C.Modifier.Chained });
  ]

let config_of_name name =
  match List.assoc_opt name known_configs with
  | Some c -> Some c
  | None ->
      Option.map snd
        (List.find_opt (fun (_, c) -> C.Config.name c = name) known_configs)

let entry_of_trial ~fingerprint (t : Campaign.trial) =
  {
    L.e_index = t.Campaign.index;
    e_spec = t.Campaign.spec_desc;
    e_fired = t.Campaign.fired;
    e_outcome = Campaign.outcome_name t.Campaign.outcome;
    e_detail = t.Campaign.detail;
    e_makespan = t.Campaign.makespan;
    e_offlined = t.Campaign.offlined;
    e_fingerprint = fingerprint;
  }

let session_of_header ?tier (h : L.header) =
  if h.L.h_kind <> "faults" then
    Error (Printf.sprintf "cannot replay %S logs (only \"faults\")" h.L.h_kind)
  else
    match config_of_name h.L.h_config with
    | None -> Error (Printf.sprintf "unknown config %S in log header" h.L.h_config)
    | Some config ->
        (* Telemetry is pure observation and the fingerprint excludes
           it, so replay always runs telemetry-off. *)
        let ses =
          Campaign.create_session ~config ~cpus:h.L.h_cpus ~tasks:h.L.h_tasks
            ~rounds:h.L.h_rounds ~quantum:h.L.h_quantum ?tier ~seed:h.L.h_seed
            ()
        in
        let golden = Campaign.session_golden ses in
        if golden.Campaign.g_makespan <> h.L.h_golden_makespan then
          Error
            (Printf.sprintf
               "golden makespan diverges: recorded %Ld, replayed %Ld"
               h.L.h_golden_makespan golden.Campaign.g_makespan)
        else if Campaign.session_golden_fingerprint ses <> h.L.h_golden_fingerprint
        then
          Error
            (Printf.sprintf
               "golden state fingerprint diverges: recorded %s, replayed %s"
               h.L.h_golden_fingerprint
               (Campaign.session_golden_fingerprint ses))
        else Ok ses

type verdict = {
  v_index : int;
  v_spec_ok : bool;
  v_fingerprint_ok : bool;
  v_bytes_ok : bool;
  v_recorded : L.entry;
  v_replayed : L.entry;
}

let verdict_ok v = v.v_spec_ok && v.v_fingerprint_ok && v.v_bytes_ok

let replay_entry ses ?quarantine_after (recorded : L.entry) =
  let tr =
    Campaign.run_random_trial_in ses ?quarantine_after
      ~index:recorded.L.e_index ()
  in
  let replayed =
    entry_of_trial ~fingerprint:tr.Campaign.tr_fingerprint tr.Campaign.tr_trial
  in
  {
    v_index = recorded.L.e_index;
    v_spec_ok = replayed.L.e_spec = recorded.L.e_spec;
    v_fingerprint_ok = replayed.L.e_fingerprint = recorded.L.e_fingerprint;
    v_bytes_ok = L.entry_to_json replayed = L.entry_to_json recorded;
    v_recorded = recorded;
    v_replayed = replayed;
  }

let replay ?index ?tier (log : L.t) =
  match session_of_header ?tier log.L.header with
  | Error msg -> Error msg
  | Ok ses ->
      let quarantine_after = log.L.header.L.h_quarantine_after in
      let entries =
        match index with
        | None -> Ok log.L.entries
        | Some i -> (
            match L.find_entry log i with
            | Some e -> Ok [ e ]
            | None -> Error (Printf.sprintf "log has no entry for trial %d" i))
      in
      Result.map
        (List.map (fun e -> replay_entry ses ?quarantine_after e))
        entries

let verdict_to_string v =
  if verdict_ok v then
    Printf.sprintf "trial %d: MATCH %s fingerprint %s" v.v_index
      v.v_recorded.L.e_spec v.v_recorded.L.e_fingerprint
  else
    Printf.sprintf
      "trial %d: DIVERGED\n  recorded: %s\n  replayed: %s" v.v_index
      (L.entry_to_json v.v_recorded)
      (L.entry_to_json v.v_replayed)
