(** Deterministic fault injector.

    A fault specification pairs a {e trigger} (when to strike: a cycle
    window, a PC range, an instruction class, a step count) with a
    {e model} (what breaks: bit flips in a memory word, a GPR, the PAC
    field of a signed pointer, or a PAuth key register; or skipping the
    triggered instruction) and a {e persistence} ([Transient] faults
    strike once, [Stuck] faults model a stuck-at hardware defect that
    keeps forcing the flipped bits for the rest of the run — the only
    way to defeat state the kernel rewrites on every entry, such as the
    key registers re-installed by the XOM setter).

    The injector attaches to cores through {!Cpu.set_step_hook}: it is
    evaluated between decode and execute of every instruction, so a
    machine run with an armed injector that never triggers retires the
    exact same instruction stream, cycle for cycle, as an uninstrumented
    one. Everything is plain deterministic state: the same spec against
    the same machine gives the same injection at the same instruction. *)

open Aarch64

type insn_class = Any_insn | Branch_insn | Load_insn | Store_insn | Pauth_insn

type trigger =
  | Always  (** strike at the first opportunity *)
  | At_cycle_window of { lo : int64; hi : int64 }
      (** strike at the first instruction whose core cycle counter lies
          in \[lo, hi\] *)
  | In_pc_range of { lo : int64; hi : int64 }  (** inclusive PC range *)
  | On_insn_class of insn_class
  | After_steps of int  (** strike once [n] hooked instructions retired *)

type model =
  | Mem_flip of { va : int64; bits : int list }
      (** flip the given bit positions of the 64-bit word at [va]
          (kernel or user), bypassing permissions like a physical flip *)
  | Gpr_flip of { reg : int; bits : int list }  (** flip bits of X[reg] *)
  | Pac_field_flip of { va : int64; rank : int }
      (** flip one bit {e inside the PAC field} of the signed pointer
          stored at [va]: [rank] indexes the configured PAC bit
          positions (modulo their count) *)
  | Key_flip of { key : Sysreg.pauth_key; high_half : bool; bit : int }
      (** flip one bit of a PAuth key register on the struck core *)
  | Skip_insn  (** suppress the triggered instruction (it still issues) *)

type persistence = Transient | Stuck

type spec = { trigger : trigger; model : model; persistence : persistence }

val spec_to_string : spec -> string

type t

(** [create spec] — fresh injector state (not yet attached). *)
val create : spec -> t

(** [arm t cpu] installs the injector as [cpu]'s step hook. A single
    injector may be armed on several cores ({!arm_all}); its
    trigger/once state is shared, so a [Transient] fault strikes once
    machine-wide. *)
val arm : t -> Cpu.t -> unit

(** [arm_all t machine] arms every core. *)
val arm_all : t -> Machine.t -> unit

(** [disarm cpu] removes any step hook from [cpu]. *)
val disarm : Cpu.t -> unit

(** [fired t] — has the fault struck at least once? *)
val fired : t -> bool

(** [injections t] — how many times the model was applied ([Stuck]
    faults re-apply on every subsequent hooked instruction). *)
val injections : t -> int

(** [first_strike t] — [(cpu, pc)] of the first injection, if any. *)
val first_strike : t -> (int * int64) option
