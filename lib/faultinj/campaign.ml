open Aarch64
module C = Camouflage
module K = Kernel
module Rng = Camo_util.Rng

type outcome =
  | Detected_by_pac
  | Detected_by_mmu
  | Panicked
  | Task_killed
  | Silent_corruption
  | Benign

let outcome_name = function
  | Detected_by_pac -> "detected-by-pac"
  | Detected_by_mmu -> "detected-by-mmu"
  | Panicked -> "panicked"
  | Task_killed -> "task-killed"
  | Silent_corruption -> "silent-corruption"
  | Benign -> "benign"

type trial = {
  index : int;
  spec : Injector.spec;
  spec_desc : string;
  fired : bool;
  outcome : outcome;
  detail : string;
  makespan : int64;
  offlined : int list;
}

type report = {
  seed : int64;
  trials : int;
  config_name : string;
  cpus : int;
  tasks : int;
  rounds : int;
  quantum : int;
  quarantine_after : int option;
  golden_makespan : int64;
  fired_count : int;
  n_detected_by_pac : int;
  n_detected_by_mmu : int;
  n_panicked : int;
  n_task_killed : int;
  n_silent : int;
  n_benign : int;
  detection_rate : float;
  mean_makespan : float;
  trial_list : trial list;
}

(* The per-task workload: [rounds] times { write(1, "xx", 2); getpid },
   exit with the completed round count. Both the console stream and the
   exit codes are predictable, so any undetected deviation from the
   golden run is visible as silent corruption. *)
let workload_program ~rounds =
  let data_lo = Int64.to_int (Int64.logand K.Layout.user_data_base 0xffffL) in
  let data_hi = Int64.to_int (Int64.shift_right_logical K.Layout.user_data_base 16) in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    [
      Asm.ins (Insn.Movz (Insn.R 21, 0, 0));
      Asm.ins (Insn.Movz (Insn.R 20, rounds land 0xffff, 0));
      (* place "xx" in the user data page *)
      Asm.ins (Insn.Movz (Insn.R 9, 0x7878, 0));
      Asm.ins (Insn.Movz (Insn.R 1, data_lo, 0));
      Asm.ins (Insn.Movk (Insn.R 1, data_hi land 0xffff, 16));
      Asm.ins (Insn.Str (Insn.R 9, Insn.Off (Insn.R 1, 0)));
      Asm.label "round";
      Asm.ins (Insn.Movz (Insn.R 0, 1, 0));
      Asm.ins (Insn.Movz (Insn.R 1, data_lo, 0));
      Asm.ins (Insn.Movk (Insn.R 1, data_hi land 0xffff, 16));
      Asm.ins (Insn.Movz (Insn.R 2, 2, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_write);
      Asm.ins (Insn.Svc K.Kbuild.sys_getpid);
      Asm.ins (Insn.Add_imm (Insn.R 21, Insn.R 21, 1));
      Asm.ins (Insn.Sub_imm (Insn.R 20, Insn.R 20, 1));
      Asm.cbnz_to (Insn.R 20) "round";
      Asm.ins (Insn.Mov (Insn.R 0, Insn.R 21));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  prog

let setup ?(telemetry = false) ?tier ~config ~seed ~cpus ~tasks ~rounds () =
  let sys = K.System.boot ~config ~seed ~cpus ~telemetry ?tier () in
  let layout = K.System.map_user_program sys (workload_program ~rounds) in
  let entry = Asm.symbol layout "main" in
  let spawned = List.init tasks (fun _ -> K.System.spawn_user_task sys ~entry) in
  (sys, layout, spawned)

(* A bounded run: a fault that turns a task into an endless loop must
   not hang the trial, so cap the slice count well above what the
   golden run needs. *)
let max_slices ~tasks = 64 * (tasks + 1)

type golden = {
  g_exits : (int * K.System.user_exit) list;  (** sorted by pid *)
  g_console : string;
  g_makespan : int64;
}

let sorted_exits (stats : K.System.smp_stats) =
  List.sort compare (List.map (fun (_c, pid, e) -> (pid, e)) stats.K.System.smp_exits)

let golden_run ?(config = C.Config.full) ?(cpus = 2) ?(tasks = 4) ?(rounds = 8)
    ?(quantum = 400) ?tier ~seed () =
  let sys, _layout, spawned = setup ?tier ~config ~seed ~cpus ~tasks ~rounds () in
  let stats =
    K.System.run_smp ~quantum ~max_slices:(max_slices ~tasks) sys ~tasks:spawned
  in
  {
    g_exits = sorted_exits stats;
    g_console = K.System.console_output sys;
    g_makespan = stats.K.System.makespan;
  }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Classify one trial against the golden run. Order matters: a panic
   trumps everything; among per-task kills the PAC path is the
   headline signal; only a run that is indistinguishable from golden is
   benign. *)
let classify ~golden sys result =
  match result with
  | Result.Error m -> (Panicked, "host abort: " ^ m)
  | Result.Ok stats ->
      if K.System.panicked sys then
        let why =
          match
            List.find_opt
              (fun (_, _, e) ->
                match e with K.System.User_panicked _ -> true | _ -> false)
              stats.K.System.smp_exits
          with
          | Some (_, _, K.System.User_panicked m) -> m
          | _ -> "panic"
        in
        (Panicked, why)
      else
        let exits = List.map (fun (_c, pid, e) -> (pid, e)) stats.K.System.smp_exits in
        let find p = List.find_opt (fun (_, e) -> p e) exits in
        let killed_with sub e =
          match e with K.System.User_killed m -> contains ~sub m | _ -> false
        in
        let as_detail = function
          | Some (pid, e) -> Printf.sprintf "pid %d: %s" pid (K.System.user_exit_to_string e)
          | None -> ""
        in
        match find (killed_with "PAC") with
        | Some _ as hit -> (Detected_by_pac, as_detail hit)
        | None -> (
            match
              find (fun e -> killed_with "SIGSEGV" e || killed_with "oops" e)
            with
            | Some _ as hit -> (Detected_by_mmu, as_detail hit)
            | None -> (
                match
                  find (function
                    | K.System.User_killed _ | K.System.Watchdog_expired _ -> true
                    | _ -> false)
                with
                | Some _ as hit -> (Task_killed, as_detail hit)
                | None ->
                    let sorted = List.sort compare exits in
                    if
                      sorted = golden.g_exits
                      && K.System.console_output sys = golden.g_console
                    then (Benign, "")
                    else if List.length sorted < List.length golden.g_exits then
                      (Silent_corruption, "lost work: not every task completed")
                    else (Silent_corruption, "exit codes or console diverge from golden")))

let run_one ?(telemetry = false) ?tier ~config ~cpus ~tasks ~rounds ~quantum
    ~quarantine_after ~seed spec_fn =
  let sys, layout, spawned =
    setup ~telemetry ?tier ~config ~seed ~cpus ~tasks ~rounds ()
  in
  let spec = spec_fn sys layout spawned in
  let inj = Injector.create spec in
  Injector.arm_all inj (K.System.machine sys);
  let result =
    try
      Result.Ok
        (K.System.run_smp ~quantum ~max_slices:(max_slices ~tasks) ?quarantine_after
           sys ~tasks:spawned)
    with Failure m -> Result.Error m
  in
  (sys, inj, spec, result)

let trial_of ~golden ~index (sys, inj, spec, result) =
  let outcome, detail = classify ~golden sys result in
  {
    index;
    spec;
    spec_desc = Injector.spec_to_string spec;
    fired = Injector.fired inj;
    outcome;
    detail;
    makespan =
      (match result with
      | Result.Ok s -> s.K.System.makespan
      | Result.Error _ -> 0L);
    offlined =
      (match result with Result.Ok s -> s.K.System.smp_offlined | Result.Error _ -> []);
  }

let run_trial ?(config = C.Config.full) ?(cpus = 2) ?(tasks = 4) ?(rounds = 8)
    ?(quantum = 400) ?quarantine_after ?tier ?(index = 0) ~seed ~spec () =
  let golden = golden_run ~config ~cpus ~tasks ~rounds ~quantum ?tier ~seed () in
  trial_of ~golden ~index
    (run_one ?tier ~config ~cpus ~tasks ~rounds ~quantum ~quarantine_after ~seed
       spec)

(* Draw one fault spec for trial [i]. The target population mixes the
   kernel's signed-pointer sites, saved task contexts, the user text,
   the key registers and plain registers — roughly the cross-section a
   beam test would hit. *)
let golden_mix = 0x9e3779b97f4a7c15L

let random_spec rng ~golden_makespan sys (layout : Asm.layout)
    (spawned : K.System.task list) =
  let span = Int64.to_int (Int64.logand golden_makespan 0x3fffffffL) in
  let window () =
    let lo = Int64.of_int (Rng.next_in rng (max 1 span)) in
    Injector.At_cycle_window { lo; hi = Int64.add lo golden_makespan }
  in
  let pick lst = List.nth lst (Rng.next_in rng (List.length lst)) in
  let task_word () =
    let task = pick spawned in
    let off =
      match Rng.next_in rng 3 with
      | 0 -> K.Kobject.Task.off_saved_pc
      | 1 -> K.Kobject.Task.off_saved_sp
      | _ -> K.Kobject.Task.off_gprs + (8 * Rng.next_in rng 31)
    in
    Int64.add task.K.System.va (Int64.of_int off)
  in
  let text_word () =
    let addr, _ = layout.Asm.code.(Rng.next_in rng (Array.length layout.Asm.code)) in
    addr
  in
  let sites = Attacks.Primitives.signed_pointer_sites sys in
  let bits () =
    if Rng.next_in rng 4 = 0 then [ Rng.next_in rng 64; Rng.next_in rng 64 ]
    else [ Rng.next_in rng 64 ]
  in
  let d = Rng.next_in rng 100 in
  if d < 25 then
    let _, va = pick sites in
    {
      Injector.trigger = window ();
      model = Injector.Pac_field_flip { va; rank = Rng.next_in rng 64 };
      persistence = Injector.Transient;
    }
  else if d < 45 then
    let va =
      match Rng.next_in rng 3 with
      | 0 -> task_word ()
      | 1 -> text_word ()
      | _ -> snd (pick sites)
    in
    {
      Injector.trigger = window ();
      model = Injector.Mem_flip { va; bits = bits () };
      persistence = Injector.Transient;
    }
  else if d < 60 then
    {
      Injector.trigger = window ();
      model = Injector.Gpr_flip { reg = Rng.next_in rng 29; bits = bits () };
      persistence = Injector.Transient;
    }
  else if d < 72 then
    let key = pick [ Sysreg.IA; Sysreg.IB; Sysreg.DA; Sysreg.DB; Sysreg.GA ] in
    {
      (* transient key flips self-heal at the next XOM key install, so
         model the interesting case: a stuck-at defect *)
      Injector.trigger = window ();
      model =
        Injector.Key_flip
          { key; high_half = Rng.next_in rng 2 = 1; bit = Rng.next_in rng 64 };
      persistence = Injector.Stuck;
    }
  else if d < 86 then
    let pc = text_word () in
    {
      Injector.trigger = Injector.In_pc_range { lo = pc; hi = pc };
      model = Injector.Skip_insn;
      persistence =
        (if Rng.next_in rng 2 = 0 then Injector.Transient else Injector.Stuck);
    }
  else
    (* a flip landing in unused user data: the benign end of the space *)
    {
      Injector.trigger = window ();
      model =
        Injector.Mem_flip
          {
            va = Int64.add K.Layout.user_data_base 0x800L;
            bits = bits ();
          };
      persistence = Injector.Transient;
    }

(* Per-job telemetry harvest: the merged counter file, a summary of the
   machine's event rings, and the per-kind span latency histograms, so
   a fleet of trials can fold thousands of runs into one machine view
   with Telemetry.Counters.merge / Telemetry.Span.merge_histograms.
   [keep_events] additionally copies the raw event stream out of the
   rings — only the handful of trials a caller renders as Chrome trace
   lanes should pay for that. *)
type job_telemetry = {
  jt_counters : Telemetry.Counters.snapshot;
  jt_events : int;
  jt_dropped : int;
  jt_hists : (Telemetry.Span.kind * Telemetry.Hist.t) list;
  jt_ring : Telemetry.Event.t list;  (* empty unless keep_events *)
}

let harvest_telemetry ?(keep_events = false) sys =
  match K.System.telemetry sys with
  | None -> None
  | Some hub ->
      let events = Telemetry.Hub.events hub in
      Some
        {
          jt_counters = Telemetry.Hub.counters hub;
          jt_events = List.length events;
          jt_dropped = Telemetry.Hub.dropped hub;
          jt_hists = Telemetry.Span.histograms events;
          jt_ring = (if keep_events then events else []);
        }

(* One fleet-shardable unit of work: trial [index] of the campaign keyed
   by [seed]. The per-trial RNG stream depends only on (seed, index), so
   any partition of the index space over any number of workers replays
   the exact trials the sequential loop would have run. *)
let run_random_trial ?(config = C.Config.full) ?(cpus = 2) ?(tasks = 4)
    ?(rounds = 8) ?(quantum = 400) ?quarantine_after ?(telemetry = false) ?tier
    ~golden ~seed ~index () =
  let rng =
    Rng.create (Int64.add seed (Int64.mul golden_mix (Int64.of_int (index + 1))))
  in
  let ((sys, _, _, _) as outcome) =
    run_one ~telemetry ?tier ~config ~cpus ~tasks ~rounds ~quantum
      ~quarantine_after ~seed
      (random_spec rng ~golden_makespan:golden.g_makespan)
  in
  (trial_of ~golden ~index outcome, harvest_telemetry sys)

(* --- snapshot-forked sessions ------------------------------------
   Booting and mapping the workload dominates a trial's cost, yet every
   trial starts from the identical post-setup state. A session does the
   setup once, snapshots it, runs the golden workload in place, and then
   serves each trial by restoring the snapshot instead of re-booting.
   Because [System.restore] returns the machine to the exact captured
   state (and clears trial-armed step hooks with it), a forked trial is
   bit-identical to a booted one — the equivalence the snapshot tests
   pin down. *)

type session = {
  ses_sys : K.System.t;
  ses_layout : Asm.layout;
  ses_spawned : K.System.task list;
  ses_base : K.System.snapshot;
  ses_golden : golden;
  ses_golden_fingerprint : string;
  ses_seed : int64;
  ses_tasks : int;
  ses_quantum : int;
}

let session_golden s = s.ses_golden
let session_golden_fingerprint s = s.ses_golden_fingerprint
let session_system s = s.ses_sys

let create_session ?(config = C.Config.full) ?(cpus = 2) ?(tasks = 4)
    ?(rounds = 8) ?(quantum = 400) ?(telemetry = false) ?tier ~seed () =
  let sys, layout, spawned =
    setup ~telemetry ?tier ~config ~seed ~cpus ~tasks ~rounds ()
  in
  let base = K.System.snapshot sys in
  let stats =
    K.System.run_smp ~quantum ~max_slices:(max_slices ~tasks) sys ~tasks:spawned
  in
  let golden =
    {
      g_exits = sorted_exits stats;
      g_console = K.System.console_output sys;
      g_makespan = stats.K.System.makespan;
    }
  in
  let fp = Snapshot.Fingerprint.of_system sys in
  K.System.restore sys base;
  {
    ses_sys = sys;
    ses_layout = layout;
    ses_spawned = spawned;
    ses_base = base;
    ses_golden = golden;
    ses_golden_fingerprint = fp;
    ses_seed = seed;
    ses_tasks = tasks;
    ses_quantum = quantum;
  }

type trial_result = {
  tr_trial : trial;
  tr_telemetry : job_telemetry option;
  tr_fingerprint : string;
}

(* Restore, arm, run: the forked counterpart of [run_one]. *)
let run_one_in ses ?quarantine_after spec_fn =
  let sys = ses.ses_sys in
  K.System.restore sys ses.ses_base;
  let spec = spec_fn sys ses.ses_layout ses.ses_spawned in
  let inj = Injector.create spec in
  Injector.arm_all inj (K.System.machine sys);
  let result =
    try
      Result.Ok
        (K.System.run_smp ~quantum:ses.ses_quantum
           ~max_slices:(max_slices ~tasks:ses.ses_tasks) ?quarantine_after sys
           ~tasks:ses.ses_spawned)
    with Failure m -> Result.Error m
  in
  (sys, inj, spec, result)

let run_random_trial_in ses ?quarantine_after ?keep_events ~index () =
  let rng =
    Rng.create
      (Int64.add ses.ses_seed (Int64.mul golden_mix (Int64.of_int (index + 1))))
  in
  let ((sys, _, _, _) as outcome) =
    run_one_in ses ?quarantine_after
      (random_spec rng ~golden_makespan:ses.ses_golden.g_makespan)
  in
  {
    tr_trial = trial_of ~golden:ses.ses_golden ~index outcome;
    tr_telemetry = harvest_telemetry ?keep_events sys;
    tr_fingerprint = Snapshot.Fingerprint.of_system sys;
  }

let report_of_trials ?(config_name = "full") ?(cpus = 2) ?(tasks = 4)
    ?(rounds = 8) ?(quantum = 400) ?quarantine_after ~seed ~golden trial_list =
  let trials = List.length trial_list in
  let count o = List.length (List.filter (fun t -> t.outcome = o) trial_list) in
  let n_detected_by_pac = count Detected_by_pac in
  let n_detected_by_mmu = count Detected_by_mmu in
  let n_panicked = count Panicked in
  let n_task_killed = count Task_killed in
  let n_silent = count Silent_corruption in
  let n_benign = count Benign in
  let detected = n_detected_by_pac + n_detected_by_mmu + n_panicked + n_task_killed in
  let detection_rate =
    if detected + n_silent = 0 then 1.0
    else float_of_int detected /. float_of_int (detected + n_silent)
  in
  let mean_makespan =
    if trials = 0 then 0.0
    else
      List.fold_left (fun acc t -> acc +. Int64.to_float t.makespan) 0.0 trial_list
      /. float_of_int trials
  in
  {
    seed;
    trials;
    config_name;
    cpus;
    tasks;
    rounds;
    quantum;
    quarantine_after;
    golden_makespan = golden.g_makespan;
    fired_count = List.length (List.filter (fun t -> t.fired) trial_list);
    n_detected_by_pac;
    n_detected_by_mmu;
    n_panicked;
    n_task_killed;
    n_silent;
    n_benign;
    detection_rate;
    mean_makespan;
    trial_list;
  }

let run ?(config = C.Config.full) ?(config_name = "full") ?(cpus = 2) ?(tasks = 4)
    ?(rounds = 8) ?(quantum = 400) ?quarantine_after ?tier ~seed ~trials () =
  let golden = golden_run ~config ~cpus ~tasks ~rounds ~quantum ?tier ~seed () in
  let trial_list =
    List.init trials (fun i ->
        fst
          (run_random_trial ~config ~cpus ~tasks ~rounds ~quantum
             ?quarantine_after ?tier ~golden ~seed ~index:i ()))
  in
  report_of_trials ~config_name ~cpus ~tasks ~rounds ~quantum ?quarantine_after
    ~seed ~golden trial_list

(* JSON rendering: fixed field order, %.6f floats, minimal escaping —
   the same report must always serialize to the same bytes. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_to_json ?(trial_detail = true) r =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"campaign\": \"camouflage-faultinj\",\n";
  add "  \"seed\": %Ld,\n" r.seed;
  add "  \"trials\": %d,\n" r.trials;
  add "  \"config\": \"%s\",\n" (json_escape r.config_name);
  add "  \"cpus\": %d,\n" r.cpus;
  add "  \"tasks\": %d,\n" r.tasks;
  add "  \"rounds\": %d,\n" r.rounds;
  add "  \"quantum\": %d,\n" r.quantum;
  add "  \"quarantine_after\": %s,\n"
    (match r.quarantine_after with None -> "null" | Some n -> string_of_int n);
  add "  \"golden_makespan\": %Ld,\n" r.golden_makespan;
  add "  \"fired\": %d,\n" r.fired_count;
  add "  \"outcomes\": {\n";
  add "    \"detected_by_pac\": %d,\n" r.n_detected_by_pac;
  add "    \"detected_by_mmu\": %d,\n" r.n_detected_by_mmu;
  add "    \"panicked\": %d,\n" r.n_panicked;
  add "    \"task_killed\": %d,\n" r.n_task_killed;
  add "    \"silent_corruption\": %d,\n" r.n_silent;
  add "    \"benign\": %d\n" r.n_benign;
  add "  },\n";
  add "  \"detection_rate\": %.6f,\n" r.detection_rate;
  add "  \"mean_makespan\": %.2f,\n" r.mean_makespan;
  if trial_detail then begin
    add "  \"trial_list\": [\n";
    List.iteri
      (fun i t ->
        add
          "    {\"index\": %d, \"spec\": \"%s\", \"fired\": %b, \"outcome\": \
           \"%s\", \"detail\": \"%s\", \"makespan\": %Ld, \"offlined\": [%s]}%s\n"
          t.index (json_escape t.spec_desc) t.fired (outcome_name t.outcome)
          (json_escape t.detail) t.makespan
          (String.concat "," (List.map string_of_int t.offlined))
          (if i = r.trials - 1 then "" else ","))
      r.trial_list;
    add "  ]\n"
  end
  else add "  \"trial_list\": []\n";
  add "}\n";
  Buffer.contents b

let report_to_string r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "fault-injection campaign: seed=%Ld trials=%d config=%s cpus=%d tasks=%d rounds=%d\n"
    r.seed r.trials r.config_name r.cpus r.tasks r.rounds;
  add "golden makespan: %Ld cycles; faults fired in %d/%d trials\n" r.golden_makespan
    r.fired_count r.trials;
  (match r.quarantine_after with
  | None -> ()
  | Some n -> add "per-CPU quarantine after %d PAC failures\n" n);
  let row name n =
    add "  %-18s %5d  (%5.1f%%)\n" name n
      (if r.trials = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int r.trials)
  in
  row "detected-by-pac" r.n_detected_by_pac;
  row "detected-by-mmu" r.n_detected_by_mmu;
  row "panicked" r.n_panicked;
  row "task-killed" r.n_task_killed;
  row "silent-corruption" r.n_silent;
  row "benign" r.n_benign;
  add "detection rate (effective faults): %.1f%%\n" (100.0 *. r.detection_rate);
  add "mean makespan: %.0f cycles (golden %Ld)\n" r.mean_makespan r.golden_makespan;
  Buffer.contents b

(* Quarantine demonstration. The fault is a stuck-at flip in core 1's
   data-key register: every switch frame was signed with the true key,
   so each attempt to schedule a task on core 1 fails authentication
   there — but the same task authenticates fine on core 0, which is
   exactly the situation per-CPU quarantine is for. *)
type demo = {
  demo_spec : string;
  baseline_panicked : bool;
  baseline_completed : int;
  baseline_failures : int;
  quarantine_panicked : bool;
  quarantine_completed : int;
  quarantine_killed : int;
  quarantine_offlined : int list;
}

let quarantine_demo ?(seed = 42L) () =
  let config = { C.Config.full with C.Config.bruteforce_threshold = 3 } in
  let data_key = C.Keys.key_for config.C.Config.mode C.Keys.Data in
  let spec =
    {
      Injector.trigger = Injector.Always;
      model = Injector.Key_flip { key = data_key; high_half = false; bit = 7 };
      persistence = Injector.Stuck;
    }
  in
  let run_variant quarantine_after =
    let sys, _layout, spawned = setup ~config ~seed ~cpus:2 ~tasks:8 ~rounds:40 () in
    let inj = Injector.create spec in
    Injector.arm inj (Machine.core (K.System.machine sys) 1);
    let stats =
      K.System.run_smp ~quantum:150 ~max_slices:(max_slices ~tasks:8)
        ?quarantine_after sys ~tasks:spawned
    in
    (sys, stats)
  in
  let bsys, bstats = run_variant None in
  let qsys, qstats = run_variant (Some 2) in
  let completed (stats : K.System.smp_stats) =
    List.length
      (List.filter
         (fun (_, _, e) -> match e with K.System.Exited _ -> true | _ -> false)
         stats.K.System.smp_exits)
  in
  let killed (stats : K.System.smp_stats) =
    List.length
      (List.filter
         (fun (_, _, e) -> match e with K.System.User_killed _ -> true | _ -> false)
         stats.K.System.smp_exits)
  in
  {
    demo_spec = Injector.spec_to_string spec ^ " on cpu1 only";
    baseline_panicked = K.System.panicked bsys;
    baseline_completed = completed bstats;
    baseline_failures = C.Bruteforce.failures (K.System.bruteforce bsys);
    quarantine_panicked = K.System.panicked qsys;
    quarantine_completed = completed qstats;
    quarantine_killed = killed qstats;
    quarantine_offlined = qstats.K.System.smp_offlined;
  }

let demo_to_string d =
  Printf.sprintf
    "quarantine demo (%s)\n\
    \  baseline:   panicked=%b completed=%d/8 pac_failures=%d\n\
    \  quarantine: panicked=%b completed=%d/8 killed=%d offlined=[%s]\n"
    d.demo_spec d.baseline_panicked d.baseline_completed d.baseline_failures
    d.quarantine_panicked d.quarantine_completed d.quarantine_killed
    (String.concat ";" (List.map string_of_int d.quarantine_offlined))
