(** Deterministic replay of recorded fault campaigns.

    A replay log ({!Snapshot.Log}) names every input the campaign
    consumed: the seed (all fault draws are a pure function of
    [(seed, index)]), the workload shape, and the golden run's makespan
    and state fingerprint. Replaying trial [i] rebuilds the session from
    the header, re-derives the spec, re-runs, and hard-asserts that the
    resulting entry — fingerprint included — is byte-identical to what
    was recorded. Any divergence (changed simulator, wrong binary,
    corrupted log) surfaces as a failed verdict, never a silent pass. *)

(** Resolve a recorded config name: either a front-end token ([full],
    [backward], [compat], [none], [sp-only], [parts], [chained]) or the
    display name {!Camouflage.Config.name} produces for one of those. *)
val config_of_name : string -> Camouflage.Config.t option

(** The log entry a finished trial records. *)
val entry_of_trial :
  fingerprint:string -> Campaign.trial -> Snapshot.Log.entry

(** Rebuild the campaign session a log was recorded against and verify
    the golden run's makespan and state fingerprint before any trial is
    replayed. Replay always runs telemetry-off: the fingerprint excludes
    telemetry, so recordings made with it still match. [tier] overrides
    the execution tier the replay runs under — tiers are bit-identical,
    so a log recorded under one tier must verify under any other; the
    log format does not record the tier. *)
val session_of_header :
  ?tier:Aarch64.Cpu.tier ->
  Snapshot.Log.header ->
  (Campaign.session, string) result

type verdict = {
  v_index : int;
  v_spec_ok : bool;  (** re-derived spec = recorded spec *)
  v_fingerprint_ok : bool;  (** post-trial state fingerprints identical *)
  v_bytes_ok : bool;  (** rendered entry lines byte-identical *)
  v_recorded : Snapshot.Log.entry;
  v_replayed : Snapshot.Log.entry;
}

val verdict_ok : verdict -> bool

(** [replay_entry ses recorded] — re-run one recorded trial in [ses]
    and compare. *)
val replay_entry :
  Campaign.session -> ?quarantine_after:int -> Snapshot.Log.entry -> verdict

(** [replay ?index log] — rebuild the session, then replay every entry
    (or just trial [index]). [Error] means the log could not be replayed
    at all (bad config name, golden divergence, unknown index); verdicts
    report per-trial divergence. *)
val replay :
  ?index:int -> ?tier:Aarch64.Cpu.tier -> Snapshot.Log.t ->
  (verdict list, string) result

val verdict_to_string : verdict -> string
