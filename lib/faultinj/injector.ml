open Aarch64

type insn_class = Any_insn | Branch_insn | Load_insn | Store_insn | Pauth_insn

type trigger =
  | Always
  | At_cycle_window of { lo : int64; hi : int64 }
  | In_pc_range of { lo : int64; hi : int64 }
  | On_insn_class of insn_class
  | After_steps of int

type model =
  | Mem_flip of { va : int64; bits : int list }
  | Gpr_flip of { reg : int; bits : int list }
  | Pac_field_flip of { va : int64; rank : int }
  | Key_flip of { key : Sysreg.pauth_key; high_half : bool; bit : int }
  | Skip_insn

type persistence = Transient | Stuck

type spec = { trigger : trigger; model : model; persistence : persistence }

type t = {
  spec : spec;
  mutable steps_seen : int;
  mutable has_fired : bool;
  mutable injection_count : int;
  mutable first : (int * int64) option;
  (* for [Stuck] faults: re-force the flipped bits on every subsequent
     hooked instruction (a stuck-at defect outlives any rewrite) *)
  mutable force : (Cpu.t -> unit) option;
}

let create spec =
  { spec; steps_seen = 0; has_fired = false; injection_count = 0; first = None; force = None }

let fired t = t.has_fired
let injections t = t.injection_count
let first_strike t = t.first

let insn_matches cls insn =
  match cls with
  | Any_insn -> true
  | Branch_insn -> (
      match insn with
      | Insn.B _ | Insn.Bl _ | Insn.Br _ | Insn.Blr _ | Insn.Ret | Insn.Cbz _
      | Insn.Cbnz _ | Insn.Bcond _ | Insn.Blra _ | Insn.Bra _ | Insn.Reta _ ->
          true
      | _ -> false)
  | Load_insn -> (
      match insn with Insn.Ldr _ | Insn.Ldrb _ | Insn.Ldp _ -> true | _ -> false)
  | Store_insn -> (
      match insn with Insn.Str _ | Insn.Strb _ | Insn.Stp _ -> true | _ -> false)
  | Pauth_insn -> (
      match insn with
      | Insn.Pac _ | Insn.Aut _ | Insn.Pac1716 _ | Insn.Aut1716 _ | Insn.Xpac _
      | Insn.Pacga _ | Insn.Blra _ | Insn.Bra _ | Insn.Reta _ ->
          true
      | _ -> false)

let trigger_due t cpu ~pc insn =
  match t.spec.trigger with
  | Always -> true
  | At_cycle_window { lo; hi } ->
      let c = Cpu.cycles cpu in
      Int64.unsigned_compare c lo >= 0 && Int64.unsigned_compare c hi <= 0
  | In_pc_range { lo; hi } ->
      Int64.unsigned_compare pc lo >= 0 && Int64.unsigned_compare pc hi <= 0
  | On_insn_class cls -> insn_matches cls insn
  | After_steps n -> t.steps_seen > n

let mask_of_bits bits =
  List.fold_left (fun acc b -> Int64.logor acc (Int64.shift_left 1L (b land 63))) 0L bits

(* Locate the physical word behind [va], trying the kernel view first.
   The write side goes straight to physical memory: a particle strike is
   not subject to stage-2 write protection. *)
let mem_word cpu va =
  let mmu = Cpu.mmu cpu and mem = Cpu.mem cpu in
  let try_el el = Mmu.translate mmu ~el ~access:Mmu.Read va in
  match (match try_el El.El1 with Result.Ok pa -> Result.Ok pa | Result.Error _ -> try_el El.El0) with
  | Result.Ok pa ->
      Some ((fun () -> Mem.read64 mem pa), fun v -> Mem.write64 mem pa v)
  | Result.Error _ -> None

let force_bits ~mask ~target current =
  Int64.logor (Int64.logand current (Int64.lognot mask)) (Int64.logand target mask)

(* Apply the fault model once on [cpu]; returns the hook verdict plus an
   optional re-force closure for [Stuck] persistence. *)
let strike t cpu =
  match t.spec.model with
  | Skip_insn -> (Cpu.Skip, None)
  | Mem_flip { va; bits } -> (
      let mask = mask_of_bits bits in
      match mem_word cpu va with
      | None -> (Cpu.Exec, None) (* unmapped: the flip lands in the void *)
      | Some (read, write) ->
          let target = Int64.logxor (read ()) mask in
          write target;
          ( Cpu.Exec,
            Some
              (fun cpu' ->
                match mem_word cpu' va with
                | Some (read', write') -> write' (force_bits ~mask ~target (read' ()))
                | None -> ()) ))
  | Pac_field_flip { va; rank } -> (
      match mem_word cpu va with
      | None -> (Cpu.Exec, None)
      | Some (read, write) ->
          let value = read () in
          let cfg = Cpu.pointer_cfg cpu value in
          let positions =
            List.concat_map
              (fun (lo, width) -> List.init width (fun i -> lo + i))
              (Vaddr.pac_field cfg)
          in
          if positions = [] then (Cpu.Exec, None)
          else begin
            let bit = List.nth positions (abs rank mod List.length positions) in
            let mask = Int64.shift_left 1L bit in
            let target = Int64.logxor value mask in
            write target;
            ( Cpu.Exec,
              Some
                (fun cpu' ->
                  match mem_word cpu' va with
                  | Some (read', write') ->
                      write' (force_bits ~mask ~target (read' ()))
                  | None -> ()) )
          end)
  | Gpr_flip { reg; bits } ->
      let reg = reg mod 31 in
      let mask = mask_of_bits bits in
      let target = Int64.logxor (Cpu.reg cpu (Insn.R reg)) mask in
      Cpu.set_reg cpu (Insn.R reg) target;
      ( Cpu.Exec,
        Some
          (fun cpu' ->
            Cpu.set_reg cpu' (Insn.R reg)
              (force_bits ~mask ~target (Cpu.reg cpu' (Insn.R reg)))) )
  | Key_flip { key; high_half; bit } ->
      let hi, lo = Sysreg.key_halves key in
      let sr = if high_half then hi else lo in
      let mask = Int64.shift_left 1L (bit land 63) in
      let target = Int64.logxor (Cpu.sysreg cpu sr) mask in
      Cpu.set_sysreg cpu sr target;
      ( Cpu.Exec,
        Some
          (fun cpu' ->
            Cpu.set_sysreg cpu' sr (force_bits ~mask ~target (Cpu.sysreg cpu' sr))) )

let insn_class_name = function
  | Any_insn -> "any"
  | Branch_insn -> "branch"
  | Load_insn -> "load"
  | Store_insn -> "store"
  | Pauth_insn -> "pauth"

let trigger_to_string = function
  | Always -> "always"
  | At_cycle_window { lo; hi } -> Printf.sprintf "cycles[%Ld,%Ld]" lo hi
  | In_pc_range { lo; hi } -> Printf.sprintf "pc[0x%Lx,0x%Lx]" lo hi
  | On_insn_class cls -> "insn-class " ^ insn_class_name cls
  | After_steps n -> Printf.sprintf "after %d steps" n

let key_name = function
  | Sysreg.IA -> "IA"
  | Sysreg.IB -> "IB"
  | Sysreg.DA -> "DA"
  | Sysreg.DB -> "DB"
  | Sysreg.GA -> "GA"

let model_to_string = function
  | Mem_flip { va; bits } ->
      Printf.sprintf "mem-flip@0x%Lx bits [%s]" va
        (String.concat ";" (List.map string_of_int bits))
  | Gpr_flip { reg; bits } ->
      Printf.sprintf "gpr-flip x%d bits [%s]" reg
        (String.concat ";" (List.map string_of_int bits))
  | Pac_field_flip { va; rank } -> Printf.sprintf "pac-field-flip@0x%Lx rank %d" va rank
  | Key_flip { key; high_half; bit } ->
      Printf.sprintf "key-flip %s.%s bit %d" (key_name key)
        (if high_half then "hi" else "lo")
        bit
  | Skip_insn -> "skip-insn"

let spec_to_string s =
  Printf.sprintf "%s %s (%s)"
    (trigger_to_string s.trigger)
    (model_to_string s.model)
    (match s.persistence with Transient -> "transient" | Stuck -> "stuck")

let hook t cpu ~pc insn =
  t.steps_seen <- t.steps_seen + 1;
  if not t.has_fired then begin
    if trigger_due t cpu ~pc insn then begin
      t.has_fired <- true;
      t.first <- Some (Cpu.id cpu, pc);
      t.injection_count <- 1;
      (match Cpu.telemetry cpu with
      | Some s ->
          Telemetry.Sink.emit s ~ts:(Cpu.cycles cpu)
            (Telemetry.Event.Injected_fault { desc = spec_to_string t.spec })
      | None -> ());
      let verdict, force = strike t cpu in
      if t.spec.persistence = Stuck then t.force <- force;
      verdict
    end
    else Cpu.Exec
  end
  else
    match t.spec.persistence with
    | Transient -> Cpu.Exec
    | Stuck -> (
        match t.spec.model with
        | Skip_insn ->
            if trigger_due t cpu ~pc insn then begin
              t.injection_count <- t.injection_count + 1;
              Cpu.Skip
            end
            else Cpu.Exec
        | _ -> (
            match t.force with
            | Some f ->
                f cpu;
                Cpu.Exec
            | None -> Cpu.Exec))

let arm t cpu = Cpu.set_step_hook cpu (Some (fun cpu ~pc insn -> hook t cpu ~pc insn))
let arm_all t machine = List.iter (arm t) (Machine.cores machine)
let disarm cpu = Cpu.set_step_hook cpu None

