(** Deterministic record-replay log.

    A log is line-JSON: a header naming every campaign input that the
    deterministic simulator needs to re-derive the run (seed, config
    name, cpus/tasks/rounds/quantum — the scheduler interleaving is a
    pure function of these), plus one entry per trial recording the
    drawn fault spec and the observed result (outcome, makespan,
    offlined cores, state fingerprint). Replay re-executes a trial from
    the header parameters and hard-asserts that the re-derived spec and
    the resulting entry — fingerprint included — are byte-identical to
    what was recorded.

    The writer is byte-stable and records no host accidents (worker
    count, wall-clock), so recording the same campaign under any
    [--workers] value yields the identical file. *)

type header = {
  h_kind : string;  (** campaign kind; ["faults"] today *)
  h_seed : int64;
  h_trials : int;
  h_config : string;  (** config name as the front end spelled it;
                          resolved back by [Faultinj.Replay.config_of_name] *)
  h_cpus : int;
  h_tasks : int;
  h_rounds : int;
  h_quantum : int;
  h_quarantine_after : int option;
  h_golden_makespan : int64;
  h_golden_fingerprint : string;  (** post-golden-run system state *)
}

type entry = {
  e_index : int;
  e_spec : string;  (** {!Faultinj.Injector.spec_to_string} of the spec *)
  e_fired : bool;
  e_outcome : string;
  e_detail : string;
  e_makespan : int64;
  e_offlined : int list;
  e_fingerprint : string;  (** post-trial system state *)
}

type t = { header : header; entries : entry list }

val header_to_json : header -> string
val entry_to_json : entry -> string

(** Full log rendering, one JSON object per line, trailing newline. *)
val to_string : t -> string

(** Inverse of {!to_string}; blank lines are ignored. Errors name the
    offending line. *)
val parse : string -> (t, string) result

val write : path:string -> t -> unit
val read : path:string -> (t, string) result

(** [find_entry t index] — the recorded entry for trial [index]. *)
val find_entry : t -> int -> entry option
