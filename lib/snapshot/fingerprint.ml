open Aarch64

(* Canonical serialization of everything the replay contract promises to
   reproduce. Every component is folded in a deterministic order (sorted
   frame indices, sorted translation-table keys, sorted sysregs, cores
   by id), so two states fingerprint equal iff they are architecturally
   identical — hash-table iteration order never leaks in. *)

let add_i64 b v = Buffer.add_int64_le b v
let add_int b v = Buffer.add_int64_le b (Int64.of_int v)

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let add_perm b (p : Mmu.perm) =
  Buffer.add_char b
    (Char.chr
       ((if p.r then 4 else 0) lor (if p.w then 2 else 0) lor if p.x then 1 else 0))

let el_code = function El.El0 -> 0 | El.El1 -> 1 | El.El2 -> 2

let add_core b core =
  add_int b (Cpu.id core);
  add_i64 b (Cpu.pc core);
  add_int b (el_code (Cpu.el core));
  add_i64 b (Cpu.sp_of core El.El0);
  add_i64 b (Cpu.sp_of core El.El1);
  add_i64 b (Cpu.sp_of core El.El2);
  for n = 0 to 30 do
    add_i64 b (Cpu.reg core (Insn.R n))
  done;
  add_int b (Cpu.flags_bits core);
  add_i64 b (Cpu.cycles core);
  add_i64 b (Cpu.insns_retired core);
  Cpu.fold_sysregs core
    (fun () sr v ->
      add_str b (Sysreg.name sr);
      add_i64 b v)
    ()

let add_machine b m =
  add_int b (Machine.cpus m);
  List.iter (add_core b) (Machine.cores m);
  add_int b (Machine.ipis_sent m);
  (* an unallocated frame reads as zeroes, so an all-zero frame is
     architecturally indistinguishable from an absent one — skip both,
     or allocation history (e.g. a restore that zero-fills frames the
     previous trial touched into existence) would leak into the hash *)
  let all_zero frame = Bytes.for_all (fun c -> c = '\000') frame in
  Mem.fold_frames (Machine.mem m)
    (fun () idx frame ->
      if not (all_zero frame) then begin
        add_int b idx;
        Buffer.add_bytes b frame
      end)
    ();
  Mmu.fold_stage1 (Machine.mmu m)
    (fun () va_page (pa_page, el0, el1) ->
      add_i64 b va_page;
      add_i64 b pa_page;
      add_perm b el0;
      add_perm b el1)
    ();
  Mmu.fold_stage2 (Machine.mmu m)
    (fun () pa_page p ->
      add_i64 b pa_page;
      add_perm b p)
    ()

let of_machine m =
  let b = Buffer.create (1 lsl 16) in
  add_machine b m;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))

let of_system sys =
  let module K = Kernel.System in
  let b = Buffer.create (1 lsl 16) in
  add_machine b (K.machine sys);
  add_bool b (K.panicked sys);
  let add_task (t : K.task) =
    add_i64 b t.K.va;
    add_int b t.K.slot;
    add_int b t.K.pid
  in
  add_task (K.current sys);
  add_int b (List.length (K.tasks sys));
  List.iter add_task (K.tasks sys);
  add_str b (K.console_output sys);
  let log = K.log_events sys in
  add_int b (List.length log);
  List.iter
    (fun (ts, line) ->
      add_i64 b ts;
      add_str b line)
    log;
  let oopses = K.oopses sys in
  add_int b (List.length oopses);
  List.iter
    (fun (o : K.oops) ->
      add_int b o.K.oops_cpu;
      add_int b o.K.oops_pid;
      add_str b o.K.oops_cause;
      add_i64 b o.K.oops_pc;
      add_str b o.K.oops_dump)
    oopses;
  let bf = K.bruteforce sys in
  add_int b (Camouflage.Bruteforce.failures bf);
  List.iter
    (fun (e : Camouflage.Bruteforce.event) ->
      add_int b e.Camouflage.Bruteforce.pid;
      add_int b e.Camouflage.Bruteforce.cpu;
      add_i64 b e.Camouflage.Bruteforce.faulting_va;
      add_int b e.Camouflage.Bruteforce.at_failure)
    (Camouflage.Bruteforce.log bf);
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))
