(** Canonical state fingerprints — the replay-identity check.

    A fingerprint is an MD5 over a deterministic serialization of the
    architectural and kernel state: every core's registers, flags,
    system registers (PAuth keys included) and counters, all allocated
    memory frames, both translation stages, the IPI count, and — for
    {!of_system} — the scheduler mirrors, console/kernel logs, oops
    records and brute-force accounting. All folds run in sorted key
    order, so equal fingerprints mean equal states regardless of
    hash-table history.

    Host-speed caches (decoded-instruction cache, micro-TLB) are
    excluded: they are invisible to the guest by construction, and the
    differential test suite (PR 5) keeps them honest. *)

(** Machine-only fingerprint (cores + memory + MMU + GIC). *)
val of_machine : Aarch64.Machine.t -> string

(** Full-system fingerprint; the value recorded in replay logs. *)
val of_system : Kernel.System.t -> string
