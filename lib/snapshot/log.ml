(* Record-replay log: one JSON object per line, header first, then one
   entry per recorded trial in index order. The writer is byte-stable
   (fixed field order, no float formatting), so the same campaign
   parameters produce the identical log for every worker count — the
   log records *what* was executed (seeds, drawn fault specs,
   interleaving-relevant parameters) and *what resulted* (outcome,
   makespan, state fingerprint), never scheduling accidents of the
   recording host. *)

type header = {
  h_kind : string;
  h_seed : int64;
  h_trials : int;
  h_config : string;
  h_cpus : int;
  h_tasks : int;
  h_rounds : int;
  h_quantum : int;
  h_quarantine_after : int option;
  h_golden_makespan : int64;
  h_golden_fingerprint : string;
}

type entry = {
  e_index : int;
  e_spec : string;
  e_fired : bool;
  e_outcome : string;
  e_detail : string;
  e_makespan : int64;
  e_offlined : int list;
  e_fingerprint : string;
}

type t = { header : header; entries : entry list }

let version = 1

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let header_to_json h =
  Printf.sprintf
    "{\"camouflage_replay_log\": %d, \"kind\": \"%s\", \"seed\": %Ld, \
     \"trials\": %d, \"config\": \"%s\", \"cpus\": %d, \"tasks\": %d, \
     \"rounds\": %d, \"quantum\": %d, \"quarantine_after\": %s, \
     \"golden_makespan\": %Ld, \"golden_fingerprint\": \"%s\"}"
    version (escape h.h_kind) h.h_seed h.h_trials (escape h.h_config) h.h_cpus
    h.h_tasks h.h_rounds h.h_quantum
    (match h.h_quarantine_after with None -> "null" | Some n -> string_of_int n)
    h.h_golden_makespan h.h_golden_fingerprint

let entry_to_json e =
  Printf.sprintf
    "{\"index\": %d, \"spec\": \"%s\", \"fired\": %b, \"outcome\": \"%s\", \
     \"detail\": \"%s\", \"makespan\": %Ld, \"offlined\": [%s], \
     \"fingerprint\": \"%s\"}"
    e.e_index (escape e.e_spec) e.e_fired (escape e.e_outcome)
    (escape e.e_detail) e.e_makespan
    (String.concat ", " (List.map string_of_int e.e_offlined))
    e.e_fingerprint

let to_string t =
  String.concat "\n"
    (header_to_json t.header :: List.map entry_to_json t.entries)
  ^ "\n"

(* Parsing. *)

let ( let* ) = Result.bind

let field name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Result.Ok v
  | None -> Result.Error (Printf.sprintf "missing or ill-typed field %S" name)

let parse_header line =
  let* json = Json.parse line in
  let* v = field "camouflage_replay_log" Json.to_int json in
  if v <> version then
    Result.Error (Printf.sprintf "unsupported replay-log version %d" v)
  else
    let* h_kind = field "kind" Json.to_string json in
    let* h_seed = field "seed" Json.to_int64 json in
    let* h_trials = field "trials" Json.to_int json in
    let* h_config = field "config" Json.to_string json in
    let* h_cpus = field "cpus" Json.to_int json in
    let* h_tasks = field "tasks" Json.to_int json in
    let* h_rounds = field "rounds" Json.to_int json in
    let* h_quantum = field "quantum" Json.to_int json in
    let* h_quarantine_after =
      match Json.member "quarantine_after" json with
      | Some Json.Null -> Result.Ok None
      | Some v -> (
          match Json.to_int v with
          | Some n -> Result.Ok (Some n)
          | None -> Result.Error "ill-typed field \"quarantine_after\"")
      | None -> Result.Error "missing field \"quarantine_after\""
    in
    let* h_golden_makespan = field "golden_makespan" Json.to_int64 json in
    let* h_golden_fingerprint = field "golden_fingerprint" Json.to_string json in
    Result.Ok
      {
        h_kind;
        h_seed;
        h_trials;
        h_config;
        h_cpus;
        h_tasks;
        h_rounds;
        h_quantum;
        h_quarantine_after;
        h_golden_makespan;
        h_golden_fingerprint;
      }

let parse_entry line =
  let* json = Json.parse line in
  let* e_index = field "index" Json.to_int json in
  let* e_spec = field "spec" Json.to_string json in
  let* e_fired = field "fired" Json.to_bool json in
  let* e_outcome = field "outcome" Json.to_string json in
  let* e_detail = field "detail" Json.to_string json in
  let* e_makespan = field "makespan" Json.to_int64 json in
  let* e_offlined =
    match Json.member "offlined" json with
    | Some (Json.List items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match Json.to_int item with
            | Some n -> Result.Ok (n :: acc)
            | None -> Result.Error "ill-typed element in \"offlined\"")
          items (Result.Ok [])
    | _ -> Result.Error "missing or ill-typed field \"offlined\""
  in
  let* e_fingerprint = field "fingerprint" Json.to_string json in
  Result.Ok
    {
      e_index;
      e_spec;
      e_fired;
      e_outcome;
      e_detail;
      e_makespan;
      e_offlined;
      e_fingerprint;
    }

let parse s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Result.Error "empty replay log"
  | header_line :: entry_lines ->
      let* header =
        Result.map_error (fun e -> "header: " ^ e) (parse_header header_line)
      in
      let* entries =
        List.fold_right
          (fun (i, line) acc ->
            let* acc = acc in
            let* e =
              Result.map_error
                (fun e -> Printf.sprintf "entry on line %d: %s" (i + 2) e)
                (parse_entry line)
            in
            Result.Ok (e :: acc))
          (List.mapi (fun i l -> (i, l)) entry_lines)
          (Result.Ok [])
      in
      Result.Ok { header; entries }

let write ~path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

let read ~path =
  match open_in_bin path with
  | exception Sys_error e -> Result.Error e
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      parse s

let find_entry t index = List.find_opt (fun e -> e.e_index = index) t.entries
