(** Minimal JSON reader shared by the replay log and the [camouflage
    serve] wire protocol ([Fleet.Jsonin] is an alias of this module).

    The repo's JSON {e writers} (campaign reports, counter files, bench
    metrics, replay logs) are hand-rolled byte-stable serializers; this
    is their missing inverse. Recursive descent, no dependencies;
    numbers without a fraction or exponent are kept as exact [int64]s so
    seeds survive the round trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [parse s] — parse one JSON value; trailing non-whitespace is an
    error. Errors carry a short description plus the 1-based line and
    column (and byte offset) of the failure. *)
val parse : string -> (t, string) result

(** [line_col s pos] — 1-based (line, column) of byte offset [pos] in
    [s]. *)
val line_col : string -> int -> int * int

(** [member name v] — field lookup in an [Obj]; [None] for absent
    fields and non-objects. *)
val member : string -> t -> t option

val to_int : t -> int option
val to_int64 : t -> int64 option
val to_float : t -> float option
val to_string : t -> string option
val to_bool : t -> bool option
