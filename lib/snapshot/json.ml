type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of string * int

let fail pos msg = raise (Error (msg, pos))

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st.pos (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

(* \uXXXX escapes are decoded to UTF-8; surrogate pairs are combined
   when both halves are present. *)
let add_codepoint buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex4 st =
  if st.pos + 4 > String.length st.s then fail st.pos "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = st.s.[st.pos] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st.pos "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d;
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st.pos "truncated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let cp = hex4 st in
                let cp =
                  if cp >= 0xd800 && cp <= 0xdbff then
                    (* high surrogate: look for the low half *)
                    if
                      st.pos + 1 < String.length st.s
                      && st.s.[st.pos] = '\\'
                      && st.s.[st.pos + 1] = 'u'
                    then begin
                      st.pos <- st.pos + 2;
                      let lo = hex4 st in
                      if lo >= 0xdc00 && lo <= 0xdfff then
                        0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                      else fail st.pos "unpaired surrogate"
                    end
                    else fail st.pos "unpaired surrogate"
                  else cp
                in
                add_codepoint buf cp
            | _ -> fail (st.pos - 1) "unknown escape");
            go ())
    | Some c ->
        if Char.code c < 0x20 then fail st.pos "raw control character in string";
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume p =
    while match peek st with Some c when p c -> true | _ -> false do
      advance st
    done
  in
  if peek st = Some '-' then advance st;
  consume (function '0' .. '9' -> true | _ -> false);
  let is_float = ref false in
  if peek st = Some '.' then begin
    is_float := true;
    advance st;
    consume (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  if text = "" || text = "-" then fail start "expected a number";
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail start "bad number"
  else
    match Int64.of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* out of int64 range: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail start "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (key, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> fail st.pos "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> fail st.pos "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character %C" c)

(* Translate a byte offset into 1-based line/column for error messages:
   multi-line request bodies and log files get a usable position, not
   just a flat byte count. *)
let line_col s pos =
  let pos = min pos (String.length s) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if s.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, pos - !bol + 1)

let position s pos =
  let line, col = line_col s pos in
  Printf.sprintf "line %d, column %d (offset %d)" line col pos

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Result.Error
          (Printf.sprintf "trailing garbage at %s" (position s st.pos))
      else Result.Ok v
  | exception Error (msg, pos) ->
      Result.Error (Printf.sprintf "%s at %s" msg (position s pos))

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int64 = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f < 9.0e18 ->
      Some (Int64.of_float f)
  | _ -> None

let to_int v =
  match to_int64 v with
  | Some i when i >= Int64.of_int min_int && i <= Int64.of_int max_int ->
      Some (Int64.to_int i)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (Int64.to_float i)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
