(** Object loading with verification and static-pointer signing.

    Loading an object (the kernel image at boot, a module at run time)
    performs the paper's module-acceptance pipeline:

    + place and relocate text, rodata and data;
    + {e statically verify} the encoded text with the PAC-state lint
      ({!Paclint.Lint}): no reads of PAuth key registers, no key writes
      or SCTLR writes outside the audited key setter (Section 4.1), no
      unprotected returns, unauthenticated indirect branches, signing
      oracles or modifier mismatches under the booted configuration's
      policy — an object with any error-severity diagnostic is rejected
      before any of its code becomes executable; warning-severity
      findings are reported on the accepted [placed];
    + walk the [.pauth_static] section and sign every listed pointer in
      place (Section 4.6);
    + map text executable (and read-only), rodata read-only, data
      read-write, with stage-2 write protection applied by the
      environment's mapping callback. *)

open Aarch64

(** Mapping purposes; the kernel's callback chooses stage-1 and stage-2
    permissions per purpose. *)
type purpose = Text | Rodata | Data

(** The address-space services the kernel provides to the loader. *)
type env = {
  place : text_bytes:int -> rodata_bytes:int -> data_bytes:int -> int64 * int64 * int64;
      (** allocate (text, rodata, data) base addresses *)
  map_region : base:int64 -> bytes:int -> purpose -> unit;
  unmap_region : base:int64 -> bytes:int -> purpose -> unit;
      (** remove a region's mappings, including any stage-2 protection
          installed by [map_region] (module unload) *)
  read32 : int64 -> int32;
  write32 : int64 -> int32 -> unit;
  read64 : int64 -> int64;
  write64 : int64 -> int64 -> unit;
  extra_symbols : (string * int64) list;  (** exported kernel symbols *)
  allowed_key_writer : int64 -> bool;  (** the audited key setter's range *)
}

type placed = {
  object_name : string;
  text_layout : Asm.layout;
  data_symbols : (string * int64) list;
  text_base : int64;
  text_bytes : int;
  rodata_base : int64;
  rodata_bytes : int;
  data_base : int64;
  data_bytes : int;
  lint_warnings : Paclint.Diag.t list;
      (** warning-severity lint findings on the accepted text *)
}

type error =
  | Verification_failed of Paclint.Diag.t list
      (** error-severity lint diagnostics on the object's text *)
  | Unknown_symbol of string
  | Unknown_member of string * string

(** [load ~cpu ~config ~registry ~env obj]. *)
val load :
  cpu:Cpu.t ->
  config:Camouflage.Config.t ->
  registry:Camouflage.Pointer_integrity.registry ->
  env:env ->
  Object_file.t ->
  (placed, error) result

(** [unload ~env placed] removes the object's text/rodata/data mappings
    through [env.unmap_region]. The caller owns allocation policy; see
    [System.unload_module] for the address-reuse path. *)
val unload : env:env -> placed -> unit

(** [symbol placed name] — text or data symbol address.
    Raises [Not_found]. *)
val symbol : placed -> string -> int64

val error_to_string : error -> string
