(** Relocatable kernel objects (the model's ELF stand-in).

    A loadable kernel module — and the kernel image itself — is a set of
    text functions (pre-assembly, so they can be placed anywhere), data
    and rodata blobs whose words may reference symbols, and the paper's
    new [.pauth_static] section (Section 4.6) listing every statically
    initialized pointer that must be signed in place after placement. *)

open Aarch64

(** A 64-bit data word: either a literal or a symbol reference resolved
    at load time (function or data symbol), optionally displaced. *)
type word = Lit of int64 | Sym of string | Sym_off of string * int

type blob = {
  blob_name : string;  (** data symbol name *)
  words : word list;
}

(** One [.pauth_static] entry in symbolic form: the pointer at
    [blob_name + word_index*8] is a statically initialized instance of
    (type, member) and must be signed after relocation. *)
type static_sign = {
  sign_blob : string;
  word_index : int;
  type_name : string;
  member_name : string;
}

type t = {
  obj_name : string;
  functions : (string * Asm.item list) list;  (** text, in layout order *)
  rodata : blob list;  (** write-protected after load *)
  data : blob list;
  pauth_static : static_sign list;
}

val empty : string -> t

val add_function : t -> name:string -> Asm.item list -> t
val add_rodata : t -> blob -> t
val add_data : t -> blob -> t
val add_static_sign : t -> static_sign -> t

(** [text_instruction_count t] — total instructions across functions. *)
val text_instruction_count : t -> int

(** [data_size_bytes t] / [rodata_size_bytes t]. *)
val data_size_bytes : t -> int

val rodata_size_bytes : t -> int

(** [write_file path t] — serialize to a [.kelf] file (magic line +
    marshalled object). Function items carry relocation closures, so a
    [.kelf] file is only readable by the binary that wrote it (the
    [camouflage modgen] / [camouflage lint --module] workflow). *)
val write_file : string -> t -> unit

(** [read_file path] — load a [.kelf] file; [Error] carries a
    human-readable reason (missing file, bad magic, corrupt payload). *)
val read_file : string -> (t, string) result
