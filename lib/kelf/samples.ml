open Aarch64
module C = Camouflage

(* Fixture modules for the lint --module workflow. Both are built with
   the real instrumentation pass, so whatever the configuration promises
   (prologue signing, epilogue authentication) is present — the
   interesting properties live in the bodies and across the call
   edges. *)

let clean config =
  let helper =
    C.Instrument.wrap config ~name:"mod_helper"
      [ Asm.ins (Insn.Movz (Insn.R 0, 7, 0)) ]
  in
  let entry =
    C.Instrument.wrap config ~name:"mod_entry"
      [
        Asm.ins (Insn.Movz (Insn.R 19, 1, 0));
        Asm.bl_to "mod_helper";
        Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 1));
      ]
  in
  let obj = Object_file.empty "sample_clean" in
  let obj = Object_file.add_function obj ~name:helper.C.Instrument.name helper.C.Instrument.items in
  Object_file.add_function obj ~name:entry.C.Instrument.name entry.C.Instrument.items

(* The cross-function signing oracle: cap_sign signs whatever its caller
   hands over; cap_make feeds it a word loaded from writable memory.
   Each function in isolation is unremarkable — cap_sign's x0 is just an
   argument (Top), cap_make never signs — so the intraprocedural lint
   passes both. Only the interprocedural flow (cap_make's Raw x0
   reaching cap_sign's PAC) exposes the oracle.

   The same pair doubles as the modifier-collision fixture: under a
   scheme whose return modifier is not address-diversified (sp-only,
   PARTS with its fixed image id), both prologues sign LR in the same
   (key, class) — a cross-function substitution pair no single-function
   region lint can see. *)
let oracle config =
  let cap_sign =
    C.Instrument.wrap config ~name:"cap_sign"
      [ Asm.ins (Insn.Pac (Sysreg.DA, Insn.R 0, Insn.R 1)) ]
  in
  let cap_make =
    C.Instrument.wrap config ~name:"cap_make"
      [
        Asm.ins (Insn.Ldr (Insn.R 0, Insn.Off (Insn.R 2, 0)));
        Asm.ins (Insn.Movz (Insn.R 1, 0x11, 0));
        Asm.bl_to "cap_sign";
      ]
  in
  let obj = Object_file.empty "sample_oracle" in
  let obj = Object_file.add_function obj ~name:cap_sign.C.Instrument.name cap_sign.C.Instrument.items in
  Object_file.add_function obj ~name:cap_make.C.Instrument.name cap_make.C.Instrument.items

let all config = [ ("clean", clean config); ("oracle", oracle config) ]
