open Aarch64
module C = Camouflage

type purpose = Text | Rodata | Data

type env = {
  place : text_bytes:int -> rodata_bytes:int -> data_bytes:int -> int64 * int64 * int64;
  map_region : base:int64 -> bytes:int -> purpose -> unit;
  unmap_region : base:int64 -> bytes:int -> purpose -> unit;
  read32 : int64 -> int32;
  write32 : int64 -> int32 -> unit;
  read64 : int64 -> int64;
  write64 : int64 -> int64 -> unit;
  extra_symbols : (string * int64) list;
  allowed_key_writer : int64 -> bool;
}

type placed = {
  object_name : string;
  text_layout : Asm.layout;
  data_symbols : (string * int64) list;
  text_base : int64;
  text_bytes : int;
  rodata_base : int64;
  rodata_bytes : int;
  data_base : int64;
  data_bytes : int;
  lint_warnings : Paclint.Diag.t list;
}

type error =
  | Verification_failed of Paclint.Diag.t list
  | Unknown_symbol of string
  | Unknown_member of string * string

exception Load_error of error

(* Lay out blobs sequentially from [base], 8-byte aligned words. *)
let place_blobs base blobs =
  let addr = ref base in
  List.map
    (fun b ->
      let this = !addr in
      addr := Int64.add !addr (Int64.of_int (8 * List.length b.Object_file.words));
      (b, this))
    blobs

let resolve_word symbols w =
  match w with
  | Object_file.Lit v -> v
  | Object_file.Sym s -> (
      match List.assoc_opt s symbols with
      | Some a -> a
      | None -> raise (Load_error (Unknown_symbol s)))
  | Object_file.Sym_off (s, off) -> (
      match List.assoc_opt s symbols with
      | Some a -> Int64.add a (Int64.of_int off)
      | None -> raise (Load_error (Unknown_symbol s)))

let load ~cpu ~config ~registry ~env (obj : Object_file.t) =
  try
    let text_bytes = 4 * Object_file.text_instruction_count obj in
    let rodata_bytes = Object_file.rodata_size_bytes obj in
    let data_bytes = Object_file.data_size_bytes obj in
    let text_base, rodata_base, data_base = env.place ~text_bytes ~rodata_bytes ~data_bytes in
    (* Text: assemble against kernel exports + this object's data symbols. *)
    let placed_ro = place_blobs rodata_base obj.Object_file.rodata in
    let placed_rw = place_blobs data_base obj.Object_file.data in
    let blob_symbols =
      List.map (fun (b, a) -> (b.Object_file.blob_name, a)) (placed_ro @ placed_rw)
    in
    let prog = Asm.create () in
    List.iter (fun (name, items) -> Asm.add_function prog ~name items) obj.Object_file.functions;
    let layout =
      Asm.assemble prog ~base:text_base ~extra_symbols:(blob_symbols @ env.extra_symbols)
    in
    Asm.encode_into layout ~write32:env.write32;
    (* Static verification before the code becomes reachable: the
       whole-object interprocedural lint under the policy this
       configuration promises, with the audited key setter as the only
       legitimate key writer. The analysis decodes what was actually
       written to memory (not the pre-encode listing), builds the
       object's call graph, and propagates PAC provenance across its
       internal calls; calls into kernel exports resolve to addresses
       outside the decoded region and fall back to the conservative
       clobber. Errors reject the object; warnings ride along on
       [placed]. *)
    let policy = C.Verifier.policy ~allowed:env.allowed_key_writer config in
    let code =
      Paclint.Lint.decode_region ~read32:env.read32 ~base:text_base
        ~size:layout.Asm.size
    in
    let report =
      Paclint.Summary.analyze_image ~symbols:layout.Asm.symbols ~policy code
    in
    let diags = report.Paclint.Summary.diags in
    let errors, lint_warnings = List.partition Paclint.Diag.is_error diags in
    if errors <> [] then Error (Verification_failed errors)
    else begin
      let all_symbols = layout.Asm.symbols @ blob_symbols @ env.extra_symbols in
      (* Relocate and write data words. *)
      let write_blob (b, base) =
        List.iteri
          (fun i w ->
            env.write64 (Int64.add base (Int64.of_int (8 * i))) (resolve_word all_symbols w))
          b.Object_file.words
      in
      List.iter write_blob placed_ro;
      List.iter write_blob placed_rw;
      (* Sign the statically initialized pointers in place. *)
      let table =
        List.map
          (fun s ->
            let blob_addr =
              match List.assoc_opt s.Object_file.sign_blob blob_symbols with
              | Some a -> a
              | None -> raise (Load_error (Unknown_symbol s.Object_file.sign_blob))
            in
            let location = Int64.add blob_addr (Int64.of_int (8 * s.Object_file.word_index)) in
            match
              C.Static_table.entry_for registry ~location
                ~type_name:s.Object_file.type_name ~member_name:s.Object_file.member_name
            with
            | entry -> entry
            | exception Not_found ->
                raise
                  (Load_error
                     (Unknown_member (s.Object_file.type_name, s.Object_file.member_name))))
          obj.Object_file.pauth_static
      in
      C.Static_table.sign_all cpu config registry table ~read64:env.read64
        ~write64:env.write64;
      (* Map with final permissions. *)
      if text_bytes > 0 then env.map_region ~base:text_base ~bytes:text_bytes Text;
      if rodata_bytes > 0 then env.map_region ~base:rodata_base ~bytes:rodata_bytes Rodata;
      if data_bytes > 0 then env.map_region ~base:data_base ~bytes:data_bytes Data;
      Ok
        {
          object_name = obj.Object_file.obj_name;
          text_layout = layout;
          data_symbols = blob_symbols;
          text_base;
          text_bytes;
          rodata_base;
          rodata_bytes;
          data_base;
          data_bytes;
          lint_warnings;
        }
    end
  with Load_error e -> Error e

(* Tear a placed object down: remove its mappings (which also lifts
   any stage-2 protection via the environment's callback). Decoded
   instructions cached for the vacated pages are flushed by the MMU
   mutations this performs — a subsequent load at the same address
   re-decodes from the new bytes. *)
let unload ~env placed =
  if placed.text_bytes > 0 then
    env.unmap_region ~base:placed.text_base ~bytes:placed.text_bytes Text;
  if placed.rodata_bytes > 0 then
    env.unmap_region ~base:placed.rodata_base ~bytes:placed.rodata_bytes Rodata;
  if placed.data_bytes > 0 then
    env.unmap_region ~base:placed.data_base ~bytes:placed.data_bytes Data

let symbol placed name =
  match List.assoc_opt name placed.text_layout.Asm.symbols with
  | Some a -> a
  | None -> (
      match List.assoc_opt name placed.data_symbols with
      | Some a -> a
      | None -> raise Not_found)

let error_to_string = function
  | Verification_failed ds ->
      Printf.sprintf "verification failed: %s"
        (String.concat "; " (List.map Paclint.Diag.to_string ds))
  | Unknown_symbol s -> Printf.sprintf "unknown symbol %s" s
  | Unknown_member (t, m) -> Printf.sprintf "unknown protected member %s.%s" t m
