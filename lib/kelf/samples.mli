(** Fixture modules for [camouflage modgen] / [camouflage lint --module].

    Built with the real instrumentation pass under the given
    configuration, so the prologue/epilogue shapes match what the kernel
    build emits. *)

(** Two instrumented functions, one calling the other; lints with no
    error under every configuration. *)
val clean : Camouflage.Config.t -> Object_file.t

(** The interprocedural detection fixture: a cross-function signing
    oracle ([cap_make] loads an attacker-writable word and passes it to
    [cap_sign]'s PAC), plus — under non-address-diversified schemes — a
    cross-function modifier-collision pair between the two prologues.
    Both findings need whole-module analysis; per-function region lint
    sees nothing. *)
val oracle : Camouflage.Config.t -> Object_file.t

(** [(basename, object)] pairs of every fixture. *)
val all : Camouflage.Config.t -> (string * Object_file.t) list
