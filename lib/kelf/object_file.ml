open Aarch64

type word = Lit of int64 | Sym of string | Sym_off of string * int

type blob = { blob_name : string; words : word list }

type static_sign = {
  sign_blob : string;
  word_index : int;
  type_name : string;
  member_name : string;
}

type t = {
  obj_name : string;
  functions : (string * Asm.item list) list;
  rodata : blob list;
  data : blob list;
  pauth_static : static_sign list;
}

let empty obj_name =
  { obj_name; functions = []; rodata = []; data = []; pauth_static = [] }

let add_function t ~name items = { t with functions = t.functions @ [ (name, items) ] }
let add_rodata t blob = { t with rodata = t.rodata @ [ blob ] }
let add_data t blob = { t with data = t.data @ [ blob ] }
let add_static_sign t s = { t with pauth_static = t.pauth_static @ [ s ] }

let text_instruction_count t =
  List.fold_left (fun acc (_, items) -> acc + Asm.instruction_count items) 0 t.functions

let blob_bytes blobs =
  List.fold_left (fun acc b -> acc + (8 * List.length b.words)) 0 blobs

let data_size_bytes t = blob_bytes t.data
let rodata_size_bytes t = blob_bytes t.rodata

(* On-disk .kelf form: magic line + Marshal with closures (fixup items
   carry relocation functions). Closure marshalling is only valid
   within the binary that wrote it — exactly the modgen/lint --module
   workflow — so the magic names the format, not an ABI promise. *)
let magic = "CAMOKELF1\n"

let write_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc t [ Marshal.Closures ])

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (String.length magic) with
          | exception End_of_file -> Error (path ^ ": not a .kelf object (truncated)")
          | m when m <> magic -> Error (path ^ ": not a .kelf object (bad magic)")
          | _ -> (
              match (Marshal.from_channel ic : t) with
              | t -> Ok t
              | exception _ ->
                  Error (path ^ ": corrupt .kelf object (marshal payload unreadable)")))
