(** Sharded fault-injection campaigns over the {!Pool} (PR 6 tentpole,
    layer 3).

    The golden run is computed once on the calling domain and shared
    read-only; each trial is one pool job keyed by [(seed, index)], so
    the work-stealing schedule cannot change which faults are drawn.
    Trials are merged {e by job index, not completion order}, making the
    report — and its JSON — byte-identical to the sequential
    {!Faultinj.Campaign.run} for every worker count. The single-run path
    is literally [~workers:1].

    With [telemetry] every trial machine boots with telemetry (pure
    observation: the report bytes do not change) and the per-job counter
    files are folded with {!Telemetry.Counters.merge} into one
    fleet-wide view, alongside summed event-ring totals. *)

type telemetry_summary = {
  counters : Telemetry.Counters.snapshot;
      (** all cores of all trial machines, merged *)
  events : int;  (** events live in the rings at harvest, summed *)
  dropped : int;  (** ring overwrites, summed *)
}

type result = {
  report : Faultinj.Campaign.report;
  telemetry : telemetry_summary option;  (** with [~telemetry:true] *)
  stats : Pool.stats;
}

val merge_telemetry : telemetry_summary -> telemetry_summary -> telemetry_summary

(** [run ~seed ~trials ()] — golden run, then [trials] pool jobs.
    Returns [None] only when [should_stop] fired before every trial
    completed (the cancelled-campaign path of [camouflage serve]).
    [progress] is called once per finished trial from worker domains.
    Defaults mirror {!Faultinj.Campaign.run}. *)
val run :
  ?config:Camouflage.Config.t ->
  ?config_name:string ->
  ?cpus:int ->
  ?tasks:int ->
  ?rounds:int ->
  ?quantum:int ->
  ?quarantine_after:int ->
  ?workers:int ->
  ?telemetry:bool ->
  ?progress:(unit -> unit) ->
  ?should_stop:(unit -> bool) ->
  seed:int64 ->
  trials:int ->
  unit ->
  result option
