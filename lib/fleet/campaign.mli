(** Sharded fault-injection campaigns over the {!Pool} (PR 6 tentpole,
    layer 3; snapshot forking and record mode added in PR 8).

    Every worker domain boots {e once}: it creates a campaign session
    ({!Faultinj.Campaign.create_session} — boot, workload setup, golden
    run, post-setup snapshot) in domain-local storage, then serves each
    trial by restoring the snapshot. Restoring is bit-identical to
    re-booting (pinned by the snapshot test suite), so the report — and
    its JSON — is byte-identical to the sequential
    {!Faultinj.Campaign.run} for every worker count. The single-run path
    is literally [~workers:1]. Trials are merged {e by job index, not
    completion order}; the per-trial RNG stream is keyed by
    [(seed, index)], so the work-stealing schedule cannot change which
    faults are drawn.

    A trial job that raises is retried and then quarantined by the pool
    ({!Pool.job_failure}): the campaign completes, the failed trial is
    absent from the report, and the failure is surfaced in [failures].

    With [record_dir] the campaign writes a deterministic replay log
    ({!Snapshot.Log}) of every trial — spec, outcome and post-trial
    state fingerprint — replayable with [camouflage replay].

    With [telemetry] every trial machine boots with telemetry (pure
    observation: the report bytes do not change) and the per-job counter
    files are folded with {!Telemetry.Counters.merge} into one
    fleet-wide view, alongside summed event-ring totals and per-kind
    span latency histograms folded with
    {!Telemetry.Span.merge_histograms}. Both folds run in job-index
    order, so the merged summary — and any JSON rendered from it — is
    byte-identical for every worker count (the merges are commutative
    monoids, so any other order would agree anyway). *)

type telemetry_summary = {
  counters : Telemetry.Counters.snapshot;
      (** all cores of all trial machines, merged *)
  events : int;  (** events live in the rings at harvest, summed *)
  dropped : int;  (** ring overwrites, summed *)
  hists : (Telemetry.Span.kind * Telemetry.Hist.t) list;
      (** span latency per kind, merged over all trials *)
  lanes : (string * Telemetry.Event.t list) list;
      (** raw event streams of the first [lanes] trials by index, for
          {!Telemetry.Chrome.serialize_lanes}; [[]] unless [run] was
          given [~lanes] *)
}

type result = {
  report : Faultinj.Campaign.report;
  telemetry : telemetry_summary option;  (** with [~telemetry:true] *)
  stats : Pool.stats;
  failures : Pool.job_failure list;
      (** trial jobs quarantined after exhausting their retries *)
  record_path : string option;
      (** the replay log written when [record_dir] was given *)
}

val merge_telemetry : telemetry_summary -> telemetry_summary -> telemetry_summary

(** [run ~seed ~trials ()] — golden run, then [trials] pool jobs forked
    from per-worker snapshots. Returns [None] only when [should_stop]
    fired before every trial completed (the cancelled-campaign path of
    [camouflage serve]). [progress] is called once per finished trial
    from worker domains. [record_dir] names an existing directory; the
    log lands in [<record_dir>/faults-<seed>-<trials>.replay].
    [job_hook] is a test-only hook invoked with the trial index at the
    start of every job attempt; raising from it simulates a worker
    failure. [lanes] (default 0) keeps the raw event streams of the
    first [lanes] trials by index for fleet Chrome traces. Defaults
    mirror {!Faultinj.Campaign.run}. *)
val run :
  ?config:Camouflage.Config.t ->
  ?config_name:string ->
  ?cpus:int ->
  ?tasks:int ->
  ?rounds:int ->
  ?quantum:int ->
  ?quarantine_after:int ->
  ?workers:int ->
  ?retries:int ->
  ?telemetry:bool ->
  ?tier:Aarch64.Cpu.tier ->
  ?lanes:int ->
  ?record_dir:string ->
  ?job_hook:(int -> unit) ->
  ?progress:(unit -> unit) ->
  ?should_stop:(unit -> bool) ->
  seed:int64 ->
  trials:int ->
  unit ->
  result option
