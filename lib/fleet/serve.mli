(** [camouflage serve]: a long-running campaign control plane speaking a
    line-oriented JSON protocol (PR 6 tentpole, layer 4).

    One request object per line on stdin, one response object per line
    on stdout. Submitted campaigns run asynchronously on a spawned
    domain (whose internal worker pool is itself sized by the request),
    so external drivers can pump many concurrent campaigns at one server
    and poll for completion.

    Requests ([{"req": ...}]):
    - [ping] — liveness check.
    - [metrics] — live server metrics (PR 9): uptime, job counts per
      state, trials completed/total and aggregate trials/sec over job
      runtimes, retry and quarantine counts, and the merged span
      latency histograms of every finished campaign as JSON. Sampled
      purely from atomics — worker domains are never interrupted, so
      polling metrics cannot perturb a campaign.
    - [submit] — start a campaign. [kind] is ["faults"] (fields: seed,
      trials, workers, cpus, tasks, rounds, quantum, quarantine, config)
      or ["bruteforce"] (fields: seed, machines, attempts, workers,
      threshold, config). Both kinds also accept [retries] (per-job
      pool retries before quarantine) and [timeout_ms] (a submit-time
      deadline: once it passes no further trial starts and the job
      finishes as [failed], distinct from a user [cancel]). Replies
      with a fresh job [id].
    - [status] — [{"id": n}]: state (running / done / cancelled /
      failed), completed/total job counts, and [failures] — the
      per-job quarantine records ([job], [attempts], [error]) of the
      completed campaign, [[]] while running or when everything
      succeeded.
    - [report] — [{"id": n}]: the merged report as an embedded JSON
      object, available once state is done. Fault-campaign reports are
      the byte-stable {!Faultinj.Campaign.report_to_json} rendering
      (newlines folded, since the protocol is line-oriented).
    - [cancel] — [{"id": n}]: stop scheduling the job's remaining
      work; in-flight trials finish, the report is discarded.
    - [shutdown] — cancel and drain running jobs, then exit the loop.

    Every malformed request (bad JSON, missing or unknown fields,
    unknown id, out-of-range parameters) gets a structured
    [{"ok": false, "error": ...}] response; nothing kills the server. *)

type t

val create : unit -> t

(** [handle t line] — process one request line, returning the response
    line (no trailing newline) and [false] when the server should stop
    ([shutdown]). Exposed so tests can drive the protocol without
    channels. *)
val handle : t -> string -> string * bool

(** [drain t] — join every spawned campaign domain, letting running
    jobs finish. Idempotent; called by {!loop} on EOF. *)
val drain : t -> unit

(** [shutdown t] — set every job's stop flag, then {!drain}: in-flight
    trials finish, queued work is shed, and the call returns without
    waiting for any campaign to run to completion. Called by {!loop}
    on an explicit [shutdown] request. *)
val shutdown : t -> unit

(** [loop t] — serve until [shutdown] or EOF on [input] (defaults:
    stdin/stdout). Responses are flushed per line. *)
val loop : ?input:in_channel -> ?output:out_channel -> t -> unit
