module C = Camouflage
module K = Kernel

type machine_report = {
  m_index : int;
  m_attempts : int;
  m_successes : int;
  m_detected : int;
  m_panicked : bool;
  m_audit_ok : bool;
}

type report = {
  sw_seed : int64;
  sw_machines : int;
  sw_attempts : int;
  sw_threshold : int;
  sw_config_name : string;
  sw_total_attempts : int;
  sw_total_successes : int;
  sw_total_detected : int;
  sw_panicked : int;
  sw_audit_failures : int;
  sw_machine_list : machine_report list;
  sw_hists : (Telemetry.Span.kind * Telemetry.Hist.t) list;
      (* merged in machine-index order; all-empty without telemetry *)
}

(* The same odd multiplier the campaign uses to spread per-index seeds
   across the splitmix64 space. *)
let seed_mix = 0x9e3779b97f4a7c15L

let machine_seed seed index =
  Int64.add seed (Int64.mul seed_mix (Int64.of_int (index + 1)))

(* Boot-once, fork-per-machine: each worker domain boots a single
   system for the sweep's (config, seed), snapshots the post-boot
   state, and serves every machine index by restoring it. Machines then
   differ only in their attack-RNG stream — statistically equivalent to
   booting fresh machines, because a random forgery guess is accepted
   with probability 2^-pac_bits regardless of the key value, so sharing
   one key schedule across machines does not bias acceptance,
   detection or panic counts. Every worker boots the identical state,
   which keeps per-index results worker-count-invariant. *)
type sweep_params = {
  swp_config : C.Config.t;
  swp_seed : int64;
  swp_telemetry : bool;
}

let machine_key : (sweep_params * (K.System.t * K.System.snapshot)) option
                  Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let machine_for p =
  match Domain.DLS.get machine_key with
  | Some (q, m) when q = p -> m
  | _ ->
      let sys =
        K.System.boot ~config:p.swp_config ~seed:p.swp_seed
          ~telemetry:p.swp_telemetry ()
      in
      let m = (sys, K.System.snapshot sys) in
      Domain.DLS.set machine_key (Some (p, m));
      m

let run_machine ~config ~seed ~telemetry ~attempts index =
  let mseed = machine_seed seed index in
  let sys, base =
    machine_for { swp_config = config; swp_seed = seed; swp_telemetry = telemetry }
  in
  K.System.restore sys base;
  let r =
    Attacks.Bruteforce_attack.run sys ~attempts
      ~seed:(Int64.logxor mseed 0x5deece66d1ce4e5bL)
  in
  let hists =
    match K.System.telemetry sys with
    | Some hub when telemetry -> Telemetry.Hub.histograms hub
    | _ -> Telemetry.Span.empty_histograms ()
  in
  ( {
      m_index = index;
      m_attempts = r.Attacks.Bruteforce_attack.attempts;
      m_successes = r.Attacks.Bruteforce_attack.successes;
      m_detected = r.Attacks.Bruteforce_attack.detected;
      m_panicked = r.Attacks.Bruteforce_attack.panicked;
      m_audit_ok = C.Bruteforce.audit (K.System.bruteforce sys);
    },
    hists )

let run ?(config = C.Config.full) ?threshold ?workers ?retries
    ?(telemetry = false) ?progress ?should_stop ~seed ~machines ~attempts () =
  let config =
    match threshold with
    | None -> config
    | Some t -> { config with C.Config.bruteforce_threshold = t }
  in
  let outcome =
    Pool.run ?workers ?retries ?progress ?should_stop ~jobs:machines
      (run_machine ~config ~seed ~telemetry ~attempts)
  in
  if outcome.Pool.stats.Pool.stopped then None
  else
    (* quarantined machines (if any) are simply absent from the list
       and reported out-of-band in the returned failures *)
    let rows = List.filter_map Fun.id (Array.to_list outcome.Pool.results) in
    let list = List.map fst rows in
    let sum f = List.fold_left (fun acc m -> acc + f m) 0 list in
    let count p = List.length (List.filter p list) in
    let hists =
      (* machine-index order (the results array is index-keyed), so
         the merged histograms are worker-count-invariant *)
      List.fold_left
        (fun acc (_, h) -> Telemetry.Span.merge_histograms acc h)
        (Telemetry.Span.empty_histograms ())
        rows
    in
    Some
      ( {
          sw_seed = seed;
          sw_machines = machines;
          sw_attempts = attempts;
          sw_threshold = config.C.Config.bruteforce_threshold;
          sw_config_name = C.Config.name config;
          sw_total_attempts = sum (fun m -> m.m_attempts);
          sw_total_successes = sum (fun m -> m.m_successes);
          sw_total_detected = sum (fun m -> m.m_detected);
          sw_panicked = count (fun m -> m.m_panicked);
          sw_audit_failures = count (fun m -> not m.m_audit_ok);
          sw_machine_list = list;
          sw_hists = hists;
        },
        outcome.Pool.stats,
        outcome.Pool.failures )

let report_to_json ?(machine_detail = true) r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"campaign\": \"camouflage-bruteforce-sweep\",\n";
  add "  \"seed\": %Ld,\n" r.sw_seed;
  add "  \"machines\": %d,\n" r.sw_machines;
  add "  \"attempts_per_machine\": %d,\n" r.sw_attempts;
  add "  \"threshold\": %d,\n" r.sw_threshold;
  add "  \"config\": \"%s\",\n" r.sw_config_name;
  add "  \"total_attempts\": %d,\n" r.sw_total_attempts;
  add "  \"total_successes\": %d,\n" r.sw_total_successes;
  add "  \"total_detected\": %d,\n" r.sw_total_detected;
  add "  \"panicked_machines\": %d,\n" r.sw_panicked;
  add "  \"audit_failures\": %d,\n" r.sw_audit_failures;
  if machine_detail then begin
    (* count from the list, not sw_machines: quarantined machines are
       absent, and the last present row must not grow a comma *)
    let rows = List.length r.sw_machine_list in
    add "  \"machine_list\": [\n";
    List.iteri
      (fun i m ->
        add
          "    {\"index\": %d, \"attempts\": %d, \"successes\": %d, \
           \"detected\": %d, \"panicked\": %b, \"audit_ok\": %b}%s\n"
          m.m_index m.m_attempts m.m_successes m.m_detected m.m_panicked
          m.m_audit_ok
          (if i = rows - 1 then "" else ","))
      r.sw_machine_list;
    add "  ],\n"
  end
  else add "  \"machine_list\": [],\n";
  add "  \"span_hists\": %s\n" (Telemetry.Span.histograms_to_json r.sw_hists);
  add "}\n";
  Buffer.contents b

let report_to_string r =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add
    "brute-force sweep: seed=%Ld machines=%d attempts=%d/machine threshold=%d \
     config=%s\n"
    r.sw_seed r.sw_machines r.sw_attempts r.sw_threshold r.sw_config_name;
  add "  attempts made    : %d\n" r.sw_total_attempts;
  add "  forgeries accepted: %d\n" r.sw_total_successes;
  add "  failures detected : %d\n" r.sw_total_detected;
  add "  machines panicked : %d/%d\n" r.sw_panicked r.sw_machines;
  add "  accounting audits : %s\n"
    (if r.sw_audit_failures = 0 then "all passed"
     else Printf.sprintf "%d FAILED" r.sw_audit_failures);
  Buffer.contents b

let bench_points ?(config = C.Config.full) ?workers ?(cpus = 1) ?(tasks = 2)
    ?(rounds = 8) ~seed ~jobs () =
  let outcome =
    Pool.run ?workers ~jobs (fun index ->
        Workloads.Smp.run_point ~config
          ~seed:(machine_seed seed index)
          ~cpus ~tasks ~rounds ())
  in
  (Array.map Option.get outcome.Pool.results, outcome.Pool.stats)
