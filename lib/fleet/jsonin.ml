(* The reader moved to [Snapshot.Json] (PR 8) so the replay log can
   parse without depending on the fleet; this alias keeps the served
   wire protocol and existing callers source-compatible. *)
include Snapshot.Json
