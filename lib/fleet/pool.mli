(** Domain-pool executor with per-worker deques and work-stealing
    (PR 6 tentpole, layer 2).

    [run ~jobs f] evaluates [f i] for every [i] in [0 .. jobs-1] across
    a pool of OCaml domains. Job indices are block-partitioned onto
    per-worker {!Deque}s; an idle worker steals from the cold end of its
    neighbours. Results land in a slot array {e at their job index}, so
    the caller always sees index order — completion order, worker count
    and steal pattern are invisible, which is what makes fleet reports
    byte-stable regardless of parallelism.

    [f] runs on worker domains: it must not share mutable state across
    jobs (each fleet job boots its own machine). A raised exception
    stops the pool and is re-raised in the caller after all workers
    join.

    [workers = 1] degenerates to a plain sequential loop on the calling
    domain — no domain is spawned; the single-run paths of the CLI are
    exactly this special case. *)

type stats = {
  workers : int;
  jobs_run : int array;  (** jobs executed, per worker *)
  steals : int array;  (** jobs a worker obtained by stealing, per worker *)
  stopped : bool;  (** [should_stop] fired before every job ran *)
}

type 'a outcome = {
  results : 'a option array;
      (** slot [i] holds [f i]; [None] only when the pool was stopped
          before job [i] was reached *)
  stats : stats;
}

(** Workers to use when the caller does not say: the host's recommended
    domain count, clamped to [1 .. 8]. *)
val default_workers : unit -> int

(** [run ?workers ?progress ?should_stop ~jobs f] — execute the job
    stream. [progress] is invoked once per completed job {e from worker
    domains} (it must be thread-safe; an [Atomic] counter is the
    intended use). [should_stop] is polled by every worker between jobs;
    once it returns [true] no further job starts, in-flight jobs finish,
    and unreached slots stay [None]. *)
val run :
  ?workers:int ->
  ?progress:(unit -> unit) ->
  ?should_stop:(unit -> bool) ->
  jobs:int ->
  (int -> 'a) ->
  'a outcome

(** [map ?workers ~jobs f] — {!run} without cancellation: every slot is
    filled, returned as a plain array in index order. *)
val map : ?workers:int -> jobs:int -> (int -> 'a) -> 'a array
