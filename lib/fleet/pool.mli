(** Domain-pool executor with per-worker deques, work-stealing and
    fault-tolerant job execution (PR 6 tentpole, layer 2; retry and
    quarantine added in PR 8).

    [run ~jobs f] evaluates [f i] for every [i] in [0 .. jobs-1] across
    a pool of OCaml domains. Job indices are block-partitioned onto
    per-worker {!Deque}s; an idle worker steals from the cold end of its
    neighbours. Results land in a slot array {e at their job index}, so
    the caller always sees index order — completion order, worker count
    and steal pattern are invisible, which is what makes fleet reports
    byte-stable regardless of parallelism.

    [f] runs on worker domains: it must not share mutable state across
    jobs (each fleet job boots — or snapshot-forks — its own machine).
    A job that raises is retried up to [retries] times with bounded
    exponential backoff; a job still raising after that is
    {e quarantined}: recorded in [failures], its slot left [None], and
    the rest of the pool keeps running. Exceptions are never re-raised
    into the caller by {!run} — inspect [failures].

    [workers = 1] degenerates to a plain sequential loop on the calling
    domain — no domain is spawned; the single-run paths of the CLI are
    exactly this special case. *)

type stats = {
  workers : int;
  jobs_run : int array;  (** jobs executed, per worker *)
  steals : int array;  (** jobs a worker obtained by stealing, per worker *)
  stopped : bool;  (** [should_stop] fired before every job ran *)
}

(** One quarantined job: it raised on every attempt. *)
type job_failure = {
  job : int;  (** job index *)
  attempts : int;  (** total attempts made (1 + retries) *)
  error : string;  (** [Printexc.to_string] of the last exception *)
}

type 'a outcome = {
  results : 'a option array;
      (** slot [i] holds [f i]; [None] when the pool was stopped before
          job [i] was reached, or job [i] was quarantined *)
  failures : job_failure list;  (** quarantined jobs, sorted by index *)
  stats : stats;
}

(** Workers to use when the caller does not say: the host's recommended
    domain count, clamped to [1 .. 8]. *)
val default_workers : unit -> int

(** Re-attempts granted to a raising job before quarantine (2). *)
val default_retries : int

(** [run ?workers ?retries ?progress ?should_stop ~jobs f] — execute
    the job stream. [progress] is invoked once per completed job — also
    for quarantined ones — {e from worker domains} (it must be
    thread-safe; an [Atomic] counter is the intended use). [should_stop]
    is polled by every worker between jobs; once it returns [true] no
    further job starts, in-flight jobs finish, and unreached slots stay
    [None]. [retries] is the number of re-attempts after a first
    failure; [retries = 0] quarantines on the first raise. *)
val run :
  ?workers:int ->
  ?retries:int ->
  ?progress:(unit -> unit) ->
  ?should_stop:(unit -> bool) ->
  jobs:int ->
  (int -> 'a) ->
  'a outcome

(** [map ?workers ?retries ~jobs f] — {!run} without cancellation:
    every slot is filled, returned as a plain array in index order.
    Raises [Failure] if any job was quarantined. *)
val map : ?workers:int -> ?retries:int -> jobs:int -> (int -> 'a) -> 'a array
