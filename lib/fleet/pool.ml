type stats = {
  workers : int;
  jobs_run : int array;
  steals : int array;
  stopped : bool;
}

type 'a outcome = { results : 'a option array; stats : stats }

let default_workers () = min 8 (max 1 (Domain.recommended_domain_count ()))

(* Each results slot is written by exactly one worker (each index is
   handed out once by the deques) and read only after every worker has
   joined, so the plain array needs no synchronisation of its own. *)
let run ?workers ?progress ?should_stop ~jobs f =
  if jobs < 0 then invalid_arg "Pool.run: negative job count";
  let workers =
    match workers with
    | Some w when w < 1 -> invalid_arg "Pool.run: worker count must be >= 1"
    | Some w -> min w (max 1 jobs)
    | None -> min (default_workers ()) (max 1 jobs)
  in
  let results = Array.make jobs None in
  let deques = Array.init workers (fun _ -> Deque.create ()) in
  (* block partition: worker w owns the contiguous index range
     [w*jobs/workers, (w+1)*jobs/workers) *)
  for i = 0 to jobs - 1 do
    Deque.push deques.(i * workers / jobs) i
  done;
  let jobs_run = Array.make workers 0 in
  let steals = Array.make workers 0 in
  let stop = Atomic.make false in
  let failed : exn option Atomic.t = Atomic.make None in
  let stopping () =
    Atomic.get stop
    ||
    match should_stop with
    | Some p when p () ->
        Atomic.set stop true;
        true
    | _ -> false
  in
  let exec w i =
    (try results.(i) <- Some (f i)
     with e ->
       ignore (Atomic.compare_and_set failed None (Some e));
       Atomic.set stop true);
    jobs_run.(w) <- jobs_run.(w) + 1;
    match progress with Some p -> p () | None -> ()
  in
  let rec steal_from w v tried =
    if tried >= workers then None
    else
      match Deque.steal deques.(v) with
      | Some i ->
          steals.(w) <- steals.(w) + 1;
          Some i
      | None -> steal_from w ((v + 1) mod workers) (tried + 1)
  in
  let rec worker w =
    if stopping () then ()
    else
      match Deque.pop deques.(w) with
      | Some i ->
          exec w i;
          worker w
      | None -> (
          match steal_from w ((w + 1) mod workers) 0 with
          | Some i ->
              exec w i;
              worker w
          | None -> ())
  in
  (* worker 0 is the calling domain: workers = 1 spawns nothing *)
  let spawned =
    List.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  worker 0;
  List.iter Domain.join spawned;
  (match Atomic.get failed with Some e -> raise e | None -> ());
  { results; stats = { workers; jobs_run; steals; stopped = Atomic.get stop } }

let map ?workers ~jobs f =
  let o = run ?workers ~jobs f in
  Array.map
    (function
      | Some x -> x
      | None -> invalid_arg "Pool.map: pool stopped before all jobs ran")
    o.results
