type stats = {
  workers : int;
  jobs_run : int array;
  steals : int array;
  stopped : bool;
}

type job_failure = { job : int; attempts : int; error : string }

type 'a outcome = {
  results : 'a option array;
  failures : job_failure list;
  stats : stats;
}

let default_workers () = min 8 (max 1 (Domain.recommended_domain_count ()))
let default_retries = 2

(* Bounded backoff between attempts: 1ms, 2ms, 4ms ... capped at 50ms.
   Transient host trouble (fd exhaustion, allocation spikes) gets room
   to clear; a deterministic bug burns at most ~100ms before the job is
   quarantined. *)
let backoff attempt =
  Unix.sleepf (min 0.05 (0.001 *. float_of_int (1 lsl min attempt 6)))

(* Each results slot is written by exactly one worker (each index is
   handed out once by the deques) and read only after every worker has
   joined, so the plain array needs no synchronisation of its own. The
   same argument covers the per-worker failure lists. *)
let run ?workers ?(retries = default_retries) ?progress ?should_stop ~jobs f =
  if jobs < 0 then invalid_arg "Pool.run: negative job count";
  if retries < 0 then invalid_arg "Pool.run: negative retry count";
  let workers =
    match workers with
    | Some w when w < 1 -> invalid_arg "Pool.run: worker count must be >= 1"
    | Some w -> min w (max 1 jobs)
    | None -> min (default_workers ()) (max 1 jobs)
  in
  let results = Array.make jobs None in
  let deques = Array.init workers (fun _ -> Deque.create ()) in
  (* block partition: worker w owns the contiguous index range
     [w*jobs/workers, (w+1)*jobs/workers) *)
  for i = 0 to jobs - 1 do
    Deque.push deques.(i * workers / jobs) i
  done;
  let jobs_run = Array.make workers 0 in
  let steals = Array.make workers 0 in
  let failures_per = Array.make workers [] in
  let stop = Atomic.make false in
  let stopping () =
    Atomic.get stop
    ||
    match should_stop with
    | Some p when p () ->
        Atomic.set stop true;
        true
    | _ -> false
  in
  (* A job that keeps raising is retried with backoff, then quarantined:
     recorded as a failure, its slot left None, and the pool moves on —
     one poisoned job cannot take the whole campaign down with it. *)
  let exec w i =
    let rec attempt n =
      match f i with
      | v -> results.(i) <- Some v
      | exception e ->
          if n > retries then
            failures_per.(w) <-
              { job = i; attempts = n; error = Printexc.to_string e }
              :: failures_per.(w)
          else begin
            backoff n;
            attempt (n + 1)
          end
    in
    attempt 1;
    jobs_run.(w) <- jobs_run.(w) + 1;
    match progress with Some p -> p () | None -> ()
  in
  let rec steal_from w v tried =
    if tried >= workers then None
    else
      match Deque.steal deques.(v) with
      | Some i ->
          steals.(w) <- steals.(w) + 1;
          Some i
      | None -> steal_from w ((v + 1) mod workers) (tried + 1)
  in
  let rec worker w =
    if stopping () then ()
    else
      match Deque.pop deques.(w) with
      | Some i ->
          exec w i;
          worker w
      | None -> (
          match steal_from w ((w + 1) mod workers) 0 with
          | Some i ->
              exec w i;
              worker w
          | None -> ())
  in
  (* worker 0 is the calling domain: workers = 1 spawns nothing *)
  let spawned =
    List.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  worker 0;
  List.iter Domain.join spawned;
  let failures =
    List.sort
      (fun a b -> compare a.job b.job)
      (List.concat (Array.to_list failures_per))
  in
  {
    results;
    failures;
    stats = { workers; jobs_run; steals; stopped = Atomic.get stop };
  }

let map ?workers ?retries ~jobs f =
  let o = run ?workers ?retries ~jobs f in
  (match o.failures with
  | [] -> ()
  | { job; attempts; error } :: _ ->
      failwith
        (Printf.sprintf "Pool.map: job %d failed after %d attempts: %s" job
           attempts error));
  Array.map
    (function
      | Some x -> x
      | None -> invalid_arg "Pool.map: pool stopped before all jobs ran")
    o.results
