(** Fleet job kinds beyond fault campaigns: PAC brute-force sweeps and
    bench-style throughput sweeps.

    A brute-force sweep runs [machines] systems, each executing the
    {!Attacks.Bruteforce_attack} guessing loop with a seed derived from
    [(seed, index)], checks the kernel's SMP accounting invariant
    ({!Camouflage.Bruteforce.audit}) on every machine, and merges
    per-machine results by job index into a byte-stable report — the
    paper's Section 5.4 mitigation measured across a fleet instead of
    one box.

    Since PR 8 the machines are snapshot-forked: each worker domain
    boots one system for the sweep's [(config, seed)], snapshots the
    post-boot state, and restores it per machine index. Machines differ
    only in their attack-RNG stream, which is statistically equivalent
    to independent boots — a random forgery is accepted with probability
    2^-pac_bits regardless of the key value — and an order of magnitude
    cheaper.

    A throughput sweep runs [jobs] independent
    {!Workloads.Smp.run_point} instances — the unit of work [bench
    fleet] uses to measure the engine's own jobs/sec scaling. *)

type machine_report = {
  m_index : int;
  m_attempts : int;  (** guesses actually made (early stop on panic) *)
  m_successes : int;  (** forged PACs that authenticated *)
  m_detected : int;  (** PAC failures recorded *)
  m_panicked : bool;  (** brute-force threshold fired *)
  m_audit_ok : bool;  (** global = per-CPU sums = log length invariant *)
}

type report = {
  sw_seed : int64;
  sw_machines : int;
  sw_attempts : int;  (** budget per machine *)
  sw_threshold : int;
  sw_config_name : string;
  sw_total_attempts : int;
  sw_total_successes : int;
  sw_total_detected : int;
  sw_panicked : int;  (** machines that halted *)
  sw_audit_failures : int;  (** machines whose accounting broke — 0 or bug *)
  sw_machine_list : machine_report list;  (** in index order *)
  sw_hists : (Telemetry.Span.kind * Telemetry.Hist.t) list;
      (** span latency over all machines, merged in index order;
          all-empty unless [run] was given [~telemetry:true] *)
}

(** [run ~seed ~machines ~attempts ()] — the sweep. [threshold]
    overrides the config's brute-force panic threshold. Deterministic:
    the same arguments give the same report for every worker count.
    Machines whose job was quarantined by the pool (after [retries])
    are absent from the report and listed in the returned failures.
    [telemetry] boots the sweep machines with telemetry (pure
    observation: attack outcomes are bit-identical) and fills
    [sw_hists]. *)
val run :
  ?config:Camouflage.Config.t ->
  ?threshold:int ->
  ?workers:int ->
  ?retries:int ->
  ?telemetry:bool ->
  ?progress:(unit -> unit) ->
  ?should_stop:(unit -> bool) ->
  seed:int64 ->
  machines:int ->
  attempts:int ->
  unit ->
  (report * Pool.stats * Pool.job_failure list) option

(** Deterministic JSON: fixed field order, byte-stable. *)
val report_to_json : ?machine_detail:bool -> report -> string

val report_to_string : report -> string

(** [bench_points ~seed ~jobs ()] — [jobs] independent single-machine
    SMP workload points (seed derived per index), merged in index order.
    The simulated numbers are identical for every worker count; only
    wall-clock changes, which is the quantity [bench fleet] reports. *)
val bench_points :
  ?config:Camouflage.Config.t ->
  ?workers:int ->
  ?cpus:int ->
  ?tasks:int ->
  ?rounds:int ->
  seed:int64 ->
  jobs:int ->
  unit ->
  Workloads.Smp.point array * Pool.stats
