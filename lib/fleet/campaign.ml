module FC = Faultinj.Campaign

type telemetry_summary = {
  counters : Telemetry.Counters.snapshot;
  events : int;
  dropped : int;
}

type result = {
  report : FC.report;
  telemetry : telemetry_summary option;
  stats : Pool.stats;
}

let empty_telemetry =
  { counters = Telemetry.Counters.zero; events = 0; dropped = 0 }

let merge_telemetry a b =
  {
    counters = Telemetry.Counters.merge a.counters b.counters;
    events = a.events + b.events;
    dropped = a.dropped + b.dropped;
  }

let run ?(config = Camouflage.Config.full) ?(config_name = "full") ?(cpus = 2)
    ?(tasks = 4) ?(rounds = 8) ?(quantum = 400) ?quarantine_after ?workers
    ?(telemetry = false) ?progress ?should_stop ~seed ~trials () =
  let golden = FC.golden_run ~config ~cpus ~tasks ~rounds ~quantum ~seed () in
  let outcome =
    Pool.run ?workers ?progress ?should_stop ~jobs:trials (fun index ->
        FC.run_random_trial ~config ~cpus ~tasks ~rounds ~quantum
          ?quarantine_after ~telemetry ~golden ~seed ~index ())
  in
  if Array.exists Option.is_none outcome.Pool.results then None
  else
    let jobs =
      Array.to_list (Array.map Option.get outcome.Pool.results)
    in
    let trial_list = List.map fst jobs in
    let telemetry_summary =
      if not telemetry then None
      else
        (* fold in index order: deterministic, and the merge-monoid
           property (tested) makes any other order equivalent anyway *)
        Some
          (List.fold_left
             (fun acc (_, jt) ->
               match jt with
               | None -> acc
               | Some jt ->
                   merge_telemetry acc
                     {
                       counters = jt.FC.jt_counters;
                       events = jt.FC.jt_events;
                       dropped = jt.FC.jt_dropped;
                     })
             empty_telemetry jobs)
    in
    let report =
      FC.report_of_trials ~config_name ~cpus ~tasks ~rounds ~quantum
        ?quarantine_after ~seed ~golden trial_list
    in
    Some { report; telemetry = telemetry_summary; stats = outcome.Pool.stats }
