module FC = Faultinj.Campaign
module L = Snapshot.Log

type telemetry_summary = {
  counters : Telemetry.Counters.snapshot;
  events : int;
  dropped : int;
  hists : (Telemetry.Span.kind * Telemetry.Hist.t) list;
  (* Chrome trace lanes: (label, raw events) for the first [lanes]
     trials *by index*, so the rendered fleet trace is byte-identical
     however the work-stealing pool scattered those trials. *)
  lanes : (string * Telemetry.Event.t list) list;
}

type result = {
  report : FC.report;
  telemetry : telemetry_summary option;
  stats : Pool.stats;
  failures : Pool.job_failure list;
  record_path : string option;
}

let empty_telemetry =
  {
    counters = Telemetry.Counters.zero;
    events = 0;
    dropped = 0;
    hists = Telemetry.Span.empty_histograms ();
    lanes = [];
  }

let merge_telemetry a b =
  {
    counters = Telemetry.Counters.merge a.counters b.counters;
    events = a.events + b.events;
    dropped = a.dropped + b.dropped;
    hists = Telemetry.Span.merge_histograms a.hists b.hists;
    lanes = a.lanes @ b.lanes;
  }

(* Boot-once, fork-per-trial: every worker domain keeps one campaign
   session (boot + workload setup + golden run, snapshotted) in
   domain-local storage and serves its trials by restoring the snapshot.
   The cache is keyed by the full parameter tuple, so interleaved
   campaigns with different shapes each get their own session; a repeat
   campaign on the same domain (the serve control plane, test suites)
   reuses the session outright. *)
type session_params = {
  sp_config : Camouflage.Config.t;
  sp_cpus : int;
  sp_tasks : int;
  sp_rounds : int;
  sp_quantum : int;
  sp_telemetry : bool;
  sp_tier : Aarch64.Cpu.tier option;
  sp_seed : int64;
}

let session_key : (session_params * FC.session) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let session_for p =
  match Domain.DLS.get session_key with
  | Some (q, ses) when q = p -> ses
  | _ ->
      let ses =
        FC.create_session ~config:p.sp_config ~cpus:p.sp_cpus ~tasks:p.sp_tasks
          ~rounds:p.sp_rounds ~quantum:p.sp_quantum ~telemetry:p.sp_telemetry
          ?tier:p.sp_tier ~seed:p.sp_seed ()
      in
      Domain.DLS.set session_key (Some (p, ses));
      ses

let run ?(config = Camouflage.Config.full) ?(config_name = "full") ?(cpus = 2)
    ?(tasks = 4) ?(rounds = 8) ?(quantum = 400) ?quarantine_after ?workers
    ?retries ?(telemetry = false) ?tier ?(lanes = 0) ?record_dir ?job_hook
    ?progress ?should_stop ~seed ~trials () =
  let params =
    {
      sp_config = config;
      sp_cpus = cpus;
      sp_tasks = tasks;
      sp_rounds = rounds;
      sp_quantum = quantum;
      sp_telemetry = telemetry;
      sp_tier = tier;
      sp_seed = seed;
    }
  in
  (* the calling domain is pool worker 0: its DLS session doubles as
     the golden-run provider, so the boot is not paid twice *)
  let ses0 = session_for params in
  let golden = FC.session_golden ses0 in
  let golden_fingerprint = FC.session_golden_fingerprint ses0 in
  let outcome =
    Pool.run ?workers ?retries ?progress ?should_stop ~jobs:trials
      (fun index ->
        (match job_hook with Some h -> h index | None -> ());
        FC.run_random_trial_in (session_for params) ?quarantine_after
          ~keep_events:(index < lanes) ~index ())
  in
  if outcome.Pool.stats.Pool.stopped then None
  else
    let jobs = List.filter_map Fun.id (Array.to_list outcome.Pool.results) in
    let trial_list = List.map (fun tr -> tr.FC.tr_trial) jobs in
    let telemetry_summary =
      if not telemetry then None
      else
        (* fold in index order: deterministic, and the merge-monoid
           property (tested) makes any other order equivalent anyway *)
        Some
          (List.fold_left
             (fun acc tr ->
               match tr.FC.tr_telemetry with
               | None -> acc
               | Some jt ->
                   merge_telemetry acc
                     {
                       counters = jt.FC.jt_counters;
                       events = jt.FC.jt_events;
                       dropped = jt.FC.jt_dropped;
                       hists = jt.FC.jt_hists;
                       lanes =
                         (match jt.FC.jt_ring with
                         | [] -> []
                         | ring ->
                             [
                               ( Printf.sprintf "trial %d"
                                   tr.FC.tr_trial.FC.index,
                                 ring );
                             ]);
                     })
             empty_telemetry jobs)
    in
    let report =
      FC.report_of_trials ~config_name ~cpus ~tasks ~rounds ~quantum
        ?quarantine_after ~seed ~golden trial_list
    in
    let record_path =
      match record_dir with
      | None -> None
      | Some dir ->
          let header =
            {
              L.h_kind = "faults";
              h_seed = seed;
              h_trials = trials;
              h_config = config_name;
              h_cpus = cpus;
              h_tasks = tasks;
              h_rounds = rounds;
              h_quantum = quantum;
              h_quarantine_after = quarantine_after;
              h_golden_makespan = golden.FC.g_makespan;
              h_golden_fingerprint = golden_fingerprint;
            }
          in
          let entries =
            List.map
              (fun tr ->
                Faultinj.Replay.entry_of_trial
                  ~fingerprint:tr.FC.tr_fingerprint tr.FC.tr_trial)
              jobs
          in
          let path =
            Filename.concat dir
              (Printf.sprintf "faults-%Ld-%d.replay" seed trials)
          in
          L.write ~path { L.header; entries };
          Some path
    in
    Some
      {
        report;
        telemetry = telemetry_summary;
        stats = outcome.Pool.stats;
        failures = outcome.Pool.failures;
        record_path;
      }
