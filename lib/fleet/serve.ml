module C = Camouflage

type job_state =
  | Running
  | Done of string  (* single-line report JSON *)
  | Cancelled
  | Failed of string

type entry = {
  e_id : int;
  e_kind : string;
  e_total : int;
  e_completed : int Atomic.t;
  e_stop : bool Atomic.t;
  e_state : job_state Atomic.t;
  e_failures : string Atomic.t;  (* rendered JSON array of quarantined jobs *)
  (* metrics plane: all written by the campaign domain, sampled by the
     server loop without touching the workers *)
  e_started : float;
  e_finished : float Atomic.t;  (* 0.0 while running *)
  e_retries : int Atomic.t;  (* attempts burned by quarantined jobs *)
  e_quarantined : int Atomic.t;
  e_hists : (Telemetry.Span.kind * Telemetry.Hist.t) list Atomic.t;
  e_domain : unit Domain.t;
  mutable e_joined : bool;
}

type t = {
  mutable next_id : int;
  entries : (int, entry) Hashtbl.t;
  created : float;
}

let create () =
  { next_id = 1; entries = Hashtbl.create 16; created = Unix.gettimeofday () }

(* --- response rendering: tiny, single-line, deterministic field order *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let error fmt = Printf.ksprintf (fun m -> Printf.sprintf "{\"ok\": false, \"error\": \"%s\"}" (escape m)) fmt

(* The report serializers are multi-line for humans; the protocol is
   line-oriented, so fold the newlines away — everything inside strings
   is already escaped, making this a pure formatting change. *)
let single_line s = String.concat "" (String.split_on_char '\n' s)

let state_name = function
  | Running -> "running"
  | Done _ -> "done"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

(* --- request field helpers *)

let str_field obj name = Option.bind (Jsonin.member name obj) Jsonin.to_string
let int_field obj name = Option.bind (Jsonin.member name obj) Jsonin.to_int
let int64_field obj name = Option.bind (Jsonin.member name obj) Jsonin.to_int64
let dflt d = Option.value ~default:d

let config_of_name = function
  | "full" -> Some C.Config.full
  | "backward" -> Some C.Config.backward_only
  | "compat" -> Some C.Config.compat
  | "none" -> Some C.Config.none
  | _ -> None

let failures_json fs =
  "["
  ^ String.concat ", "
      (List.map
         (fun f ->
           Printf.sprintf "{\"job\": %d, \"attempts\": %d, \"error\": \"%s\"}"
             f.Pool.job f.Pool.attempts (escape f.Pool.error))
         fs)
  ^ "]"

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

let bounded name lo hi v =
  if v < lo || v > hi then bad "%s %d out of range (%d-%d)" name v lo hi;
  v

let parse_config obj =
  match str_field obj "config" with
  | None -> (C.Config.full, "full")
  | Some name -> (
      match config_of_name name with
      | Some c -> (c, name)
      | None -> bad "unknown config %S" name)

(* --- job bookkeeping *)

(* The mutable cells one campaign domain reports through; [register]
   wires them into the entry the server samples. *)
type cells = {
  c_completed : int Atomic.t;
  c_stop : bool Atomic.t;
  c_state : job_state Atomic.t;
  c_failures : string Atomic.t;
  c_finished : float Atomic.t;
  c_retries : int Atomic.t;
  c_quarantined : int Atomic.t;
  c_hists : (Telemetry.Span.kind * Telemetry.Hist.t) list Atomic.t;
}

(* Campaign epilogue shared by both kinds: failure bookkeeping,
   retry/quarantine counts and the finish timestamp. *)
let finish_job cells fs =
  Atomic.set cells.c_failures (failures_json fs);
  Atomic.set cells.c_quarantined (List.length fs);
  Atomic.set cells.c_retries
    (List.fold_left (fun acc f -> acc + max 0 (f.Pool.attempts - 1)) 0 fs);
  Atomic.set cells.c_finished (Unix.gettimeofday ())

let register t ~kind ~total spawn =
  let id = t.next_id in
  t.next_id <- id + 1;
  let cells =
    {
      c_completed = Atomic.make 0;
      c_stop = Atomic.make false;
      c_state = Atomic.make Running;
      c_failures = Atomic.make "[]";
      c_finished = Atomic.make 0.0;
      c_retries = Atomic.make 0;
      c_quarantined = Atomic.make 0;
      c_hists = Atomic.make (Telemetry.Span.empty_histograms ());
    }
  in
  let domain = spawn cells in
  Hashtbl.replace t.entries id
    {
      e_id = id;
      e_kind = kind;
      e_total = total;
      e_completed = cells.c_completed;
      e_stop = cells.c_stop;
      e_state = cells.c_state;
      e_failures = cells.c_failures;
      e_started = Unix.gettimeofday ();
      e_finished = cells.c_finished;
      e_retries = cells.c_retries;
      e_quarantined = cells.c_quarantined;
      e_hists = cells.c_hists;
      e_domain = domain;
      e_joined = false;
    };
  Printf.sprintf "{\"ok\": true, \"id\": %d, \"kind\": \"%s\", \"total\": %d}" id
    kind total

(* A submit-time deadline folds into the campaign's stop predicate:
   once it passes, no further trial starts and the job lands in Failed
   (a timed-out campaign is an error, not a user cancellation). *)
let deadline_stop ~stop timeout_ms =
  let timed_out = Atomic.make false in
  let deadline =
    Option.map
      (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
      timeout_ms
  in
  let should_stop () =
    Atomic.get stop
    ||
    match deadline with
    | Some d when Unix.gettimeofday () > d ->
        Atomic.set timed_out true;
        true
    | _ -> false
  in
  (should_stop, timed_out)

let cancelled_state ~timed_out timeout_ms =
  if Atomic.get timed_out then
    Failed
      (Printf.sprintf "timeout after %d ms: campaign cancelled"
         (Option.value ~default:0 timeout_ms))
  else Cancelled

let submit_faults t obj =
  let config, config_name = parse_config obj in
  let seed = dflt 42L (int64_field obj "seed") in
  let trials = bounded "trials" 1 1_000_000 (dflt 16 (int_field obj "trials")) in
  let workers =
    bounded "workers" 1 64 (dflt (Pool.default_workers ()) (int_field obj "workers"))
  in
  let cpus = bounded "cpus" 1 16 (dflt 2 (int_field obj "cpus")) in
  let tasks = bounded "tasks" 1 64 (dflt 4 (int_field obj "tasks")) in
  let rounds = bounded "rounds" 1 10_000 (dflt 8 (int_field obj "rounds")) in
  let quantum = bounded "quantum" 50 100_000 (dflt 400 (int_field obj "quantum")) in
  let quarantine_after =
    Option.map (bounded "quarantine" 1 1_000_000) (int_field obj "quarantine")
  in
  let retries = Option.map (bounded "retries" 0 100) (int_field obj "retries") in
  let tier =
    match str_field obj "tier" with
    | None -> None
    | Some name -> (
        match Aarch64.Cpu.tier_of_string name with
        | Some _ as t -> t
        | None -> bad "unknown tier %S (interp|icache|traces)" name)
  in
  let timeout_ms =
    Option.map (bounded "timeout_ms" 1 86_400_000) (int_field obj "timeout_ms")
  in
  register t ~kind:"faults" ~total:trials (fun cells ->
      Domain.spawn (fun () ->
          let should_stop, timed_out =
            deadline_stop ~stop:cells.c_stop timeout_ms
          in
          match
            Campaign.run ~config ~config_name ~cpus ~tasks ~rounds ~quantum
              ?quarantine_after ~workers ?retries ~telemetry:true ?tier
              ~progress:(fun () -> Atomic.incr cells.c_completed)
              ~should_stop ~seed ~trials ()
          with
          | Some result ->
              finish_job cells result.Campaign.failures;
              (match result.Campaign.telemetry with
              | Some ts -> Atomic.set cells.c_hists ts.Campaign.hists
              | None -> ());
              Atomic.set cells.c_state
                (Done
                   (single_line
                      (Faultinj.Campaign.report_to_json
                         result.Campaign.report)))
          | None ->
              Atomic.set cells.c_state (cancelled_state ~timed_out timeout_ms)
          | exception e ->
              Atomic.set cells.c_state (Failed (Printexc.to_string e))))

let submit_bruteforce t obj =
  let config, _ = parse_config obj in
  let seed = dflt 42L (int64_field obj "seed") in
  let machines =
    bounded "machines" 1 1_000_000 (dflt 8 (int_field obj "machines"))
  in
  let attempts = bounded "attempts" 1 100_000 (dflt 8 (int_field obj "attempts")) in
  let workers =
    bounded "workers" 1 64 (dflt (Pool.default_workers ()) (int_field obj "workers"))
  in
  let threshold = Option.map (bounded "threshold" 1 1_000_000) (int_field obj "threshold") in
  let retries = Option.map (bounded "retries" 0 100) (int_field obj "retries") in
  let timeout_ms =
    Option.map (bounded "timeout_ms" 1 86_400_000) (int_field obj "timeout_ms")
  in
  register t ~kind:"bruteforce" ~total:machines (fun cells ->
      Domain.spawn (fun () ->
          let should_stop, timed_out =
            deadline_stop ~stop:cells.c_stop timeout_ms
          in
          match
            Sweep.run ~config ?threshold ~workers ?retries ~telemetry:true
              ~progress:(fun () -> Atomic.incr cells.c_completed)
              ~should_stop ~seed ~machines ~attempts ()
          with
          | Some (report, _, fs) ->
              finish_job cells fs;
              Atomic.set cells.c_hists report.Sweep.sw_hists;
              Atomic.set cells.c_state
                (Done (single_line (Sweep.report_to_json report)))
          | None ->
              Atomic.set cells.c_state (cancelled_state ~timed_out timeout_ms)
          | exception e ->
              Atomic.set cells.c_state (Failed (Printexc.to_string e))))

let find t obj =
  match int_field obj "id" with
  | None -> bad "request needs an integer \"id\""
  | Some id -> (
      match Hashtbl.find_opt t.entries id with
      | Some e -> e
      | None -> bad "unknown id %d" id)

let status_response e =
  let state = Atomic.get e.e_state in
  let extra =
    match state with
    | Failed m -> Printf.sprintf ", \"error\": \"%s\"" (escape m)
    | _ -> ""
  in
  Printf.sprintf
    "{\"ok\": true, \"id\": %d, \"kind\": \"%s\", \"state\": \"%s\", \
     \"completed\": %d, \"total\": %d, \"failures\": %s%s}"
    e.e_id e.e_kind (state_name state)
    (min (Atomic.get e.e_completed) e.e_total)
    e.e_total (Atomic.get e.e_failures) extra

let report_response e =
  match Atomic.get e.e_state with
  | Done report ->
      Printf.sprintf
        "{\"ok\": true, \"id\": %d, \"kind\": \"%s\", \"state\": \"done\", \
         \"report\": %s}"
        e.e_id e.e_kind report
  | state ->
      error "job %d is %s, no report available" e.e_id (state_name state)

(* Live metrics, sampled purely from atomics: the campaign domains and
   their worker pools are never interrupted or locked. Entries are
   aggregated in id order so the response layout is stable. *)
let metrics_response t =
  let now = Unix.gettimeofday () in
  let entries =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> compare a.e_id b.e_id)
  in
  let state_count want =
    List.length
      (List.filter
         (fun e ->
           match (Atomic.get e.e_state, want) with
           | Running, `Running | Done _, `Done | Cancelled, `Cancelled
           | Failed _, `Failed ->
               true
           | _ -> false)
         entries)
  in
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 entries in
  let completed = sum (fun e -> min (Atomic.get e.e_completed) e.e_total) in
  let total = sum (fun e -> e.e_total) in
  (* job runtimes, not wall uptime: jobs overlap, so this is aggregate
     throughput over busy time *)
  let busy =
    List.fold_left
      (fun acc e ->
        let fin = Atomic.get e.e_finished in
        acc +. ((if fin > 0.0 then fin else now) -. e.e_started))
      0.0 entries
  in
  let per_sec = if busy > 0.0 then float_of_int completed /. busy else 0.0 in
  let hists =
    List.fold_left
      (fun acc e -> Telemetry.Span.merge_histograms acc (Atomic.get e.e_hists))
      (Telemetry.Span.empty_histograms ())
      entries
  in
  Printf.sprintf
    "{\"ok\": true, \"reply\": \"metrics\", \"uptime_ms\": %d, \
     \"jobs\": {\"submitted\": %d, \"running\": %d, \"done\": %d, \
     \"cancelled\": %d, \"failed\": %d}, \
     \"trials\": {\"completed\": %d, \"total\": %d, \"per_sec\": %.1f}, \
     \"retries\": %d, \"quarantined\": %d, \"span_hists\": %s}"
    (int_of_float ((now -. t.created) *. 1000.0))
    (List.length entries)
    (state_count `Running) (state_count `Done) (state_count `Cancelled)
    (state_count `Failed) completed total per_sec
    (sum (fun e -> Atomic.get e.e_retries))
    (sum (fun e -> Atomic.get e.e_quarantined))
    (Telemetry.Span.histograms_to_json hists)

let cancel_response e =
  Atomic.set e.e_stop true;
  Printf.sprintf "{\"ok\": true, \"id\": %d, \"state\": \"%s\"}" e.e_id
    (match Atomic.get e.e_state with
    | Running -> "cancelling"
    | s -> state_name s)

let drain t =
  Hashtbl.iter
    (fun _ e ->
      if not e.e_joined then begin
        e.e_joined <- true;
        Domain.join e.e_domain
      end)
    t.entries

(* Cancel everything still running, then join: shutdown must not block
   behind a campaign that would otherwise run for minutes. In-flight
   trials finish (workers poll the stop flag between jobs); queued work
   is shed. *)
let shutdown t =
  Hashtbl.iter (fun _ e -> Atomic.set e.e_stop true) t.entries;
  drain t

let handle t line =
  let continue = ref true in
  let response =
    match Jsonin.parse line with
    | Result.Error msg -> error "parse error: %s" msg
    | Result.Ok obj -> (
        try
          match str_field obj "req" with
          | None -> error "request needs a \"req\" field"
          | Some "ping" -> "{\"ok\": true, \"reply\": \"pong\"}"
          | Some "submit" -> (
              match str_field obj "kind" with
              | Some "faults" -> submit_faults t obj
              | Some "bruteforce" -> submit_bruteforce t obj
              | Some other -> error "unknown kind %S (try: faults, bruteforce)" other
              | None -> error "submit needs a \"kind\" field")
          | Some "metrics" -> metrics_response t
          | Some "status" -> status_response (find t obj)
          | Some "report" -> report_response (find t obj)
          | Some "cancel" -> cancel_response (find t obj)
          | Some "shutdown" ->
              continue := false;
              "{\"ok\": true, \"reply\": \"bye\"}"
          | Some other -> error "unknown req %S" other
        with Bad_request m -> error "%s" m)
  in
  (response, !continue)

let loop ?(input = stdin) ?(output = stdout) t =
  let rec go () =
    (* EOF lets running jobs finish; an explicit shutdown cancels them
       first so the exit cannot block behind a long campaign *)
    match input_line input with
    | exception End_of_file -> drain t
    | line when String.trim line = "" -> go ()
    | line ->
        let response, continue = handle t line in
        output_string output response;
        output_char output '\n';
        flush output;
        if continue then go () else shutdown t
  in
  go ()
