(** A mutex-guarded work-stealing deque (PR 6 tentpole, layer 1).

    One deque per pool worker. The owner pushes and pops at the {e hot}
    end (LIFO — freshest work, best cache locality); thieves steal from
    the {e cold} end (FIFO — oldest work, which for the pool's block
    partition means a thief walks off with the far end of the victim's
    index range, minimising further contention).

    Contention is one uncontended mutex acquisition per operation: with
    job granularities of whole machine boots (milliseconds), a lock-free
    Chase–Lev structure would buy nothing measurable, and the mutex keeps
    every interleaving trivially linearizable. *)

type 'a t

val create : unit -> 'a t

(** [push t x] — owner adds [x] at the hot end. *)
val push : 'a t -> 'a -> unit

(** [pop t] — owner removes the most recently pushed element. *)
val pop : 'a t -> 'a option

(** [steal t] — a thief removes the oldest element. *)
val steal : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool
