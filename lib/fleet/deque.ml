(* Two-stack deque under one mutex. Invariant: the logical queue, oldest
   first, is [front @ List.rev back]. The owner's end is the back (push
   conses, pop takes the head — LIFO); thieves take the head of front
   (FIFO). When one side runs dry it flips the other, preserving order. *)

type 'a t = {
  m : Mutex.t;
  mutable front : 'a list;  (* oldest first *)
  mutable back : 'a list;  (* newest first *)
  mutable n : int;
}

let create () = { m = Mutex.create (); front = []; back = []; n = 0 }

let locked t f =
  Mutex.lock t.m;
  let r =
    try f ()
    with e ->
      Mutex.unlock t.m;
      raise e
  in
  Mutex.unlock t.m;
  r

let push t x =
  locked t (fun () ->
      t.back <- x :: t.back;
      t.n <- t.n + 1)

let pop t =
  locked t (fun () ->
      match t.back with
      | x :: rest ->
          t.back <- rest;
          t.n <- t.n - 1;
          Some x
      | [] -> (
          match List.rev t.front with
          | [] -> None
          | x :: rest ->
              (* flipped: newest first, so the head is the owner's pick *)
              t.front <- [];
              t.back <- rest;
              t.n <- t.n - 1;
              Some x))

let steal t =
  locked t (fun () ->
      match t.front with
      | x :: rest ->
          t.front <- rest;
          t.n <- t.n - 1;
          Some x
      | [] -> (
          match List.rev t.back with
          | [] -> None
          | x :: rest ->
              (* flipped: oldest first, so the head is the thief's pick *)
              t.back <- [];
              t.front <- rest;
              t.n <- t.n - 1;
              Some x))

let length t = locked t (fun () -> t.n)
let is_empty t = length t = 0
