type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

(* Position-annotated tree: [pos] is the byte offset of the value's
   first character, so validators can blame the exact source location
   of a semantic error (same idiom as [Snapshot.Json]). *)
type located = { v : lvalue; pos : int }

and lvalue =
  | LNull
  | LBool of bool
  | LNum of float
  | LStr of string
  | LList of located list
  | LObj of (string * located) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* 1-based line and column of a byte offset — the Snapshot.Json
   convention, so every tool reports positions the same way. *)
let line_col s pos =
  let pos = max 0 (min pos (String.length s)) in
  let line = ref 1 and col = ref 1 in
  for i = 0 to pos - 1 do
    if s.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let position s pos =
  let line, col = line_col s pos in
  Printf.sprintf "line %d, column %d (offset %d)" line col pos

exception Bad of string

let parse_located text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at %s" msg (position text !pos))) in
  let skip_ws () =
    while
      !pos < len
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= len
       && String.sub text !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'r' -> Buffer.add_char b '\r'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 4 > len then fail "bad \\u escape";
                  let hex = String.sub text !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* good enough for the validator: keep BMP code points
                     as a single byte when they fit, '?' otherwise *)
                  Buffer.add_char b
                    (if code < 0x80 then Char.chr code else '?')
              | _ -> fail "bad escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && numchar text.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    let start = !pos in
    let at v = { v; pos = start } in
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> at (LStr (parse_string ()))
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          at (LObj []))
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          at (LObj (members []))
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          at (LList []))
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          at (LList (elements []))
    | Some 't' -> at (literal "true" (LBool true))
    | Some 'f' -> at (literal "false" (LBool false))
    | Some 'n' -> at (literal "null" LNull)
    | Some _ -> at (LNum (parse_number ()))
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then
      Error (Printf.sprintf "trailing garbage at %s" (position text !pos))
    else Ok v
  with Bad msg -> Error msg

let rec strip { v; _ } =
  match v with
  | LNull -> Null
  | LBool b -> Bool b
  | LNum f -> Num f
  | LStr s -> Str s
  | LList l -> List (List.map strip l)
  | LObj kvs -> Obj (List.map (fun (k, v) -> (k, strip v)) kvs)

let parse text = Result.map strip (parse_located text)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let lmember key { v; _ } =
  match v with LObj fields -> List.assoc_opt key fields | _ -> None
