type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

exception Bad of string

let parse text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < len
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= len
       && String.sub text !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'r' -> Buffer.add_char b '\r'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 4 > len then fail "bad \\u escape";
                  let hex = String.sub text !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* good enough for the validator: keep BMP code points
                     as a single byte when they fit, '?' otherwise *)
                  Buffer.add_char b
                    (if code < 0x80 then Char.chr code else '?')
              | _ -> fail "bad escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && numchar text.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
