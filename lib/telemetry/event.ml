type payload =
  | Syscall_enter of { nr : int; name : string; pid : int }
  | Syscall_exit of { nr : int; name : string; pid : int; result : int64 }
  | Context_switch of { from_pid : int; to_pid : int }
  | Switch_done of { from_pid : int; to_pid : int }
  | Key_switch of { domain : string; pid : int }
  | Ipi_send of { dst : int; kind : string }
  | Ipi_receive of { srcs : int list; kind : string }
  | Auth_failure of { pid : int; va : int64 }
  | Oops of { pid : int; cause : string }
  | Injected_fault of { desc : string }
  | Quarantine of { victim : int }
  | Log of { line : string }

type t = { ts : int64; cpu : int; payload : payload }

let kind = function
  | Syscall_enter _ -> "syscall-enter"
  | Syscall_exit _ -> "syscall-exit"
  | Context_switch _ -> "context-switch"
  | Switch_done _ -> "switch-done"
  | Key_switch _ -> "key-switch"
  | Ipi_send _ -> "ipi-send"
  | Ipi_receive _ -> "ipi-receive"
  | Auth_failure _ -> "auth-failure"
  | Oops _ -> "oops"
  | Injected_fault _ -> "injected-fault"
  | Quarantine _ -> "quarantine"
  | Log _ -> "log"

let describe = function
  | Syscall_enter { nr; name; pid } ->
      Printf.sprintf "%s(#%d) pid %d" name nr pid
  | Syscall_exit { nr; name; pid; result } ->
      Printf.sprintf "%s(#%d) pid %d -> %Ld" name nr pid result
  | Context_switch { from_pid; to_pid } ->
      Printf.sprintf "pid %d -> pid %d" from_pid to_pid
  | Switch_done { from_pid; to_pid } ->
      Printf.sprintf "pid %d -> pid %d done" from_pid to_pid
  | Key_switch { domain; pid } -> Printf.sprintf "%s keys (pid %d)" domain pid
  | Ipi_send { dst; kind } -> Printf.sprintf "%s -> cpu%d" kind dst
  | Ipi_receive { srcs; kind } ->
      Printf.sprintf "%s from [%s]" kind
        (String.concat "," (List.map string_of_int srcs))
  | Auth_failure { pid; va } -> Printf.sprintf "pid %d va 0x%Lx" pid va
  | Oops { pid; cause } -> Printf.sprintf "pid %d: %s" pid cause
  | Injected_fault { desc } -> desc
  | Quarantine { victim } -> Printf.sprintf "cpu%d quarantined" victim
  | Log { line } -> line

let pid_of = function
  | Syscall_enter { pid; _ } | Syscall_exit { pid; _ } -> Some pid
  | Context_switch { to_pid; _ } | Switch_done { to_pid; _ } -> Some to_pid
  | Key_switch { pid; _ } -> Some pid
  | Auth_failure { pid; _ } | Oops { pid; _ } -> Some pid
  | Ipi_send _ | Ipi_receive _ | Injected_fault _ | Quarantine _ | Log _ -> None

let to_string t =
  Printf.sprintf "[%8Ld] cpu%d %-14s %s" t.ts t.cpu (kind t.payload)
    (describe t.payload)
