(** Machine-wide telemetry: one {!Sink} per core plus merged views.
    [Aarch64.Machine] creates a hub when booted with telemetry and
    attaches sink [i] to core [i]. *)

type t

val create : ?ring_depth:int -> cpus:int -> unit -> t
val cpus : t -> int
val sink : t -> int -> Sink.t
val sinks : t -> Sink.t array

(** Merged counter snapshot over all cores. *)
val counters : t -> Counters.snapshot

val per_cpu : t -> Counters.snapshot array

(** All live events, sorted by (ts, cpu, arrival) — deterministic. *)
val events : t -> Event.t list

(** Spans derived from {!events} (a pure fold; see {!Span}). *)
val spans : t -> Span.t list

(** Per-kind latency histograms over {!spans}, every {!Span.kind}
    present in {!Span.all_kinds} order. *)
val histograms : t -> (Span.kind * Hist.t) list

(** Total events overwritten across all rings. *)
val dropped : t -> int

val reset : t -> unit

(** Whole-hub capture (every per-core sink), for machine snapshots. *)
type captured

val capture : t -> captured
val restore : t -> captured -> unit
