(** Cycle-stamped structured trace events (PR 4 tentpole, layer 2).

    Every variant mirrors one observable transition in the model:
    syscall boundaries and context/key switches from [Kernel.System],
    IPIs from [Aarch64.Machine], authentication failures from the
    exception path, injected faults from [Faultinj], quarantines from
    [run_smp], plus every kernel log line so the printk stream merges
    into the same timeline. *)

type payload =
  | Syscall_enter of { nr : int; name : string; pid : int }
  | Syscall_exit of { nr : int; name : string; pid : int; result : int64 }
  | Context_switch of { from_pid : int; to_pid : int }
      (** emitted when the scheduler starts a switch *)
  | Switch_done of { from_pid : int; to_pid : int }
      (** emitted once [cpu_switch_to] lands on the incoming task, so
          [Context_switch]/[Switch_done] bracket the switch cost *)
  | Key_switch of { domain : string; pid : int }  (** ["kernel"]/["user"] *)
  | Ipi_send of { dst : int; kind : string }
  | Ipi_receive of { srcs : int list; kind : string }
  | Auth_failure of { pid : int; va : int64 }
  | Oops of { pid : int; cause : string }
  | Injected_fault of { desc : string }
  | Quarantine of { victim : int }
  | Log of { line : string }

type t = { ts : int64;  (** core-local cycle count at emission *) cpu : int; payload : payload }

(** Short stable tag, e.g. ["syscall-enter"]. *)
val kind : payload -> string

(** Human-readable one-liner for the payload. *)
val describe : payload -> string

(** Task the event belongs to, when it is task-scoped. *)
val pid_of : payload -> int option

val to_string : t -> string
