(** PMU-style per-core counter file (PR 4 tentpole, layer 1).

    One [t] hangs off each core's telemetry sink; the interpreter calls
    {!retire} once per executed instruction with the instruction's
    class and cycle charge, and the kernel/machine layers bump the
    discrete event counters. Everything is plain int64 arithmetic so a
    disabled run pays only the [option] match in the interpreter.

    The library deliberately does not depend on [Aarch64]: the
    instruction taxonomy here is telemetry's own, and [Cpu] maps its
    [Insn.t] values into it. *)

(** Retirement class of one instruction. [Pac] covers PACIA/PACIB/
    PACDA/PACDB/PACIA1716; [Pacga] the generic-key MAC; [Aut] the
    non-branching authenticators; [Auth_branch] RETA*/BRA*/BLRA*;
    [Sys] MRS/MSR/ISB; [Exception] SVC/ERET/BRK/HLT. *)
type insn_class =
  | Alu
  | Load
  | Store
  | Branch
  | Pac
  | Pacga
  | Aut
  | Auth_branch
  | Xpac
  | Sys
  | Exception

val class_count : int
val class_index : insn_class -> int
val class_name : insn_class -> string
val all_classes : insn_class list

type t

(** Immutable copy of a counter file. [classes] is indexed by
    {!class_index} and must not be mutated by callers. *)
type snapshot = {
  retired : int64;
  cycles : int64;
  classes : int64 array;
  auth_failures : int64;
  key_installs : int64;
  exception_entries : int64;
  exception_returns : int64;
  mmu_walks : int64;
  ipis_sent : int64;
  ipis_received : int64;
}

val create : unit -> t
val reset : t -> unit

(** Record one retired instruction of class [cls] costing [cycles]. *)
val retire : t -> cls:insn_class -> cycles:int -> unit

val count_auth_failure : t -> unit
val count_key_install : t -> unit
val count_exception_entry : t -> unit
val count_exception_return : t -> unit
val count_mmu_walk : t -> unit
val count_ipi_sent : t -> unit
val count_ipi_received : t -> unit

val snapshot : t -> snapshot

(** [restore t s] overwrites the live counter file with [s] — the
    inverse of {!snapshot}, used by machine state restore so an
    observed forked run matches an observed booted one bit-for-bit. *)
val restore : t -> snapshot -> unit

val zero : snapshot

(** [diff ~after ~before] — element-wise [after - before]. *)
val diff : after:snapshot -> before:snapshot -> snapshot

(** Element-wise sum, for folding per-core files into a machine view. *)
val merge : snapshot -> snapshot -> snapshot

val class_count_of : snapshot -> insn_class -> int64

(** Derived: PAC-constructing ops ([Pac] + [Pacga] classes). *)
val pac_ops : snapshot -> int64

(** Derived: authenticating ops ([Aut] + [Auth_branch] classes). *)
val aut_ops : snapshot -> int64

(** Derived: XPAC strips (the [Xpac] class). *)
val xpac_strips : snapshot -> int64

(** Live reads for the guest-visible PMEVCNTRn sysregs. *)
val live_pac_ops : t -> int64

val live_aut_ops : t -> int64
val live_auth_failures : t -> int64

(** Stable (label, value) rows, classes first, for tables and JSON. *)
val rows : snapshot -> (string * int64) list

val to_string : snapshot -> string

(** One-line JSON object; keys in {!rows} order, byte-stable. *)
val to_json : snapshot -> string
