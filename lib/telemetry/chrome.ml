(* Track layout: pid 0 = per-core tracks (tid = core id), pid 1 =
   per-task tracks (tid = task pid). [serialize_lanes] instead gives
   every lane (a fleet trial) its own process, one thread per core. *)

let core_pid = 0
let task_pid = 1

type item = Span of Event.t * Event.t | Instant of Event.t

(* Pair begin/end markers within one track, first-in-first-out: syscall
   enter/exit (same pid, nr and core, exit not before enter), context
   switch begin/done (same pids and core) and the kernel->user key
   residency window (same core). Everything unpaired is an instant. *)
let pair evs =
  let arr = Array.of_list evs in
  let n = Array.length arr in
  let consumed = Array.make n false in
  let items = ref [] in
  let find_end i matches =
    let rec find j =
      if j >= n then None
      else if consumed.(j) then find (j + 1)
      else if
        matches arr.(j).Event.payload
        && arr.(j).Event.cpu = arr.(i).Event.cpu
        && arr.(j).Event.ts >= arr.(i).Event.ts
      then Some j
      else find (j + 1)
    in
    find (i + 1)
  in
  let close i = function
    | Some j ->
        consumed.(j) <- true;
        items := Span (arr.(i), arr.(j)) :: !items
    | None -> items := Instant arr.(i) :: !items
  in
  for i = 0 to n - 1 do
    if not consumed.(i) then
      match arr.(i).Event.payload with
      | Event.Syscall_enter { nr; pid; _ } ->
          close i
            (find_end i (function
              | Event.Syscall_exit { nr = nr'; pid = pid'; _ } ->
                  nr' = nr && pid' = pid
              | _ -> false))
      | Event.Context_switch { from_pid; to_pid } ->
          close i
            (find_end i (function
              | Event.Switch_done { from_pid = f; to_pid = t } ->
                  f = from_pid && t = to_pid
              | _ -> false))
      | Event.Key_switch { domain = "kernel"; _ } ->
          close i
            (find_end i (function
              | Event.Key_switch { domain = "user"; _ } -> true
              | _ -> false))
      | _ -> items := Instant arr.(i) :: !items
  done;
  List.rev !items

let event_name (p : Event.payload) =
  match p with
  | Event.Syscall_enter { name; _ } | Event.Syscall_exit { name; _ } -> name
  | _ -> Event.kind p

let span_name (p : Event.payload) =
  match p with
  | Event.Syscall_enter { name; _ } -> name
  | Event.Context_switch _ -> "context-switch"
  | Event.Key_switch _ -> "kernel-keys"
  | p -> Event.kind p

let span_cat (p : Event.payload) =
  match p with
  | Event.Syscall_enter _ -> "syscall"
  | Event.Context_switch _ -> "context-switch"
  | Event.Key_switch _ -> "key-domain"
  | p -> Event.kind p

let obj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> "\"" ^ k ^ "\": " ^ v) fields)
  ^ "}"

let str s = "\"" ^ Json.escape s ^ "\""

let instant_json ~pid ~tid (ev : Event.t) =
  obj
    [
      ("name", str (event_name ev.payload));
      ("cat", str (Event.kind ev.payload));
      ("ph", str "i");
      ("s", str "t");
      ("ts", Printf.sprintf "%Ld" ev.ts);
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
      ("args", obj [ ("desc", str (Event.describe ev.payload)) ]);
    ]

let span_json ~pid ~tid (enter : Event.t) (exit_ : Event.t) =
  obj
    [
      ("name", str (span_name enter.payload));
      ("cat", str (span_cat enter.payload));
      ("ph", str "X");
      ("ts", Printf.sprintf "%Ld" enter.ts);
      ("dur", Printf.sprintf "%Ld" (Int64.sub exit_.ts enter.ts));
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
      ("args", obj [ ("desc", str (Event.describe exit_.payload)) ]);
    ]

(* IPI spans live on the sender's core track but end on the receiver's
   clock; they come from the global span pass, not per-track pairing. *)
let ipi_span_json ~pid ~tid (sp : Span.t) =
  obj
    [
      ("name", str sp.Span.sp_label);
      ("cat", str "ipi");
      ("ph", str "X");
      ("ts", Printf.sprintf "%Ld" sp.Span.sp_start);
      ("dur", Printf.sprintf "%Ld" sp.Span.sp_dur);
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
      ("args", obj [ ("desc", str ("ipi " ^ sp.Span.sp_label)) ]);
    ]

let metadata_json ~pid ~tid ~meta ~name_ =
  obj
    [
      ("name", str meta);
      ("ph", str "M");
      ("ts", "0");
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
      ("args", obj [ ("name", str name_) ]);
    ]

(* A track is rendered as (ts, json) items so extra span sources (the
   IPI pass) can be merged in and the whole track re-sorted: Perfetto
   and {!validate} require ascending ts within a track. *)
let track_items ~pid ~tid evs =
  (* per-track ascending ts: task tracks can interleave cores whose
     cycle counters differ, so sort locally before pairing *)
  let evs =
    List.stable_sort
      (fun (a : Event.t) (b : Event.t) -> Int64.compare a.ts b.ts)
      evs
  in
  pair evs
  |> List.map (function
       | Span (en, ex) -> (en.Event.ts, span_json ~pid ~tid en ex)
       | Instant ev -> (ev.Event.ts, instant_json ~pid ~tid ev))

let finish_track items =
  List.stable_sort (fun (a, _) (b, _) -> Int64.compare a b) items
  |> List.map snd

(* One process worth of per-core tracks for [events], with IPI spans
   folded onto the sender core's track. *)
let core_tracks ~pid ~cpus events =
  let ipi_spans =
    List.filter (fun s -> s.Span.sp_kind = Span.Ipi) (Span.of_events events)
  in
  List.concat
    (List.init cpus (fun c ->
         let evs = List.filter (fun (e : Event.t) -> e.cpu = c) events in
         let ipis =
           List.filter_map
             (fun s ->
               if s.Span.sp_cpu = c then
                 Some (s.Span.sp_start, ipi_span_json ~pid ~tid:c s)
               else None)
             ipi_spans
         in
         finish_track (track_items ~pid ~tid:c evs @ ipis)))

let serialize hub =
  let events = Hub.events hub in
  let metadata =
    metadata_json ~pid:core_pid ~tid:0 ~meta:"process_name" ~name_:"cores"
    :: metadata_json ~pid:task_pid ~tid:0 ~meta:"process_name" ~name_:"tasks"
    :: List.concat
         (List.init (Hub.cpus hub) (fun c ->
              [
                metadata_json ~pid:core_pid ~tid:c ~meta:"thread_name"
                  ~name_:(Printf.sprintf "cpu%d" c);
              ]))
  in
  let cores = core_tracks ~pid:core_pid ~cpus:(Hub.cpus hub) events in
  let task_pids =
    List.filter_map (fun (e : Event.t) -> Event.pid_of e.payload) events
    |> List.sort_uniq compare
  in
  let task_meta =
    List.map
      (fun p ->
        metadata_json ~pid:task_pid ~tid:p ~meta:"thread_name"
          ~name_:(Printf.sprintf "pid %d" p))
      task_pids
  in
  let task_tracks =
    List.concat_map
      (fun p ->
        finish_track
          (track_items ~pid:task_pid ~tid:p
             (List.filter
                (fun (e : Event.t) -> Event.pid_of e.payload = Some p)
                events)))
      task_pids
  in
  let all = metadata @ task_meta @ cores @ task_tracks in
  "{\"traceEvents\": [\n" ^ String.concat ",\n" all
  ^ "\n], \"displayTimeUnit\": \"ns\"}\n"

(* Fleet view: one process ("lane") per entry, one thread per core that
   appears in the lane's events. Lanes are keyed by the caller (the
   fleet engine passes deterministic trial labels), so the document is
   byte-identical however many workers produced the events. *)
let serialize_lanes lanes =
  let lane_doc idx (label, events) =
    let cpus =
      List.map (fun (e : Event.t) -> e.cpu) events |> List.sort_uniq compare
    in
    let metadata =
      metadata_json ~pid:idx ~tid:0 ~meta:"process_name" ~name_:label
      :: List.map
           (fun c ->
             metadata_json ~pid:idx ~tid:c ~meta:"thread_name"
               ~name_:(Printf.sprintf "cpu%d" c))
           cpus
    in
    let ncpus = List.fold_left (fun acc c -> max acc (c + 1)) 0 cpus in
    metadata @ core_tracks ~pid:idx ~cpus:ncpus events
  in
  let all = List.concat (List.mapi lane_doc lanes) in
  "{\"traceEvents\": [\n" ^ String.concat ",\n" all
  ^ "\n], \"displayTimeUnit\": \"ns\"}\n"

let text ?limit hub =
  let events = Hub.events hub in
  let events =
    match limit with
    | Some n ->
        let len = List.length events in
        if len > n then List.filteri (fun i _ -> i >= len - n) events
        else events
    | None -> events
  in
  let b = Buffer.create 512 in
  List.iter
    (fun ev ->
      Buffer.add_string b (Event.to_string ev);
      Buffer.add_char b '\n')
    events;
  let dropped = Hub.dropped hub in
  if dropped > 0 then
    Buffer.add_string b (Printf.sprintf "(%d older events dropped)\n" dropped);
  Buffer.contents b

let validate text =
  let ( let* ) = Result.bind in
  let* doc = Json.parse_located text in
  let* events =
    match Json.lmember "traceEvents" doc with
    | Some { Json.v = Json.LList evs; _ } -> Ok evs
    | Some { Json.pos; _ } ->
        Error
          (Printf.sprintf "traceEvents is not an array at %s"
             (Json.position text pos))
    | None -> Error "missing traceEvents"
  in
  let at pos = Json.position text pos in
  let last : (int * int, int64) Hashtbl.t = Hashtbl.create 16 in
  let check i (ev : Json.located) =
    let field name =
      match Json.lmember name ev with
      | Some v -> Ok v
      | None ->
          Error
            (Printf.sprintf "event %d: missing %s at %s" i name (at ev.Json.pos))
    in
    let* name = field "name" in
    let* () =
      match name.Json.v with
      | Json.LStr _ -> Ok ()
      | _ ->
          Error
            (Printf.sprintf "event %d: name is not a string at %s" i
               (at name.Json.pos))
    in
    let* ph = field "ph" in
    let* ph =
      match ph.Json.v with
      | Json.LStr s -> Ok s
      | _ ->
          Error
            (Printf.sprintf "event %d: ph is not a string at %s" i
               (at ph.Json.pos))
    in
    let num name =
      let* v = field name in
      match v.Json.v with
      | Json.LNum f -> Ok (f, v.Json.pos)
      | _ ->
          Error
            (Printf.sprintf "event %d: %s is not a number at %s" i name
               (at v.Json.pos))
    in
    let* pid, _ = num "pid" in
    let* tid, _ = num "tid" in
    if ph = "M" then Ok ()
    else
      let* ts, ts_pos = num "ts" in
      let* () =
        if ph = "X" then
          let* dur, dur_pos = num "dur" in
          if dur < 0.0 then
            Error
              (Printf.sprintf "event %d: negative dur at %s" i (at dur_pos))
          else Ok ()
        else Ok ()
      in
      let key = (int_of_float pid, int_of_float tid) in
      let ts64 = Int64.of_float ts in
      match Hashtbl.find_opt last key with
      | Some prev when ts64 < prev ->
          Error
            (Printf.sprintf
               "event %d: ts %Ld before %Ld on track (pid %d, tid %d) at %s" i
               ts64 prev (fst key) (snd key) (at ts_pos))
      | _ ->
          Hashtbl.replace last key ts64;
          Ok ()
  in
  let rec go i = function
    | [] -> Ok ()
    | ev :: rest ->
        let* () = check i ev in
        go (i + 1) rest
  in
  go 0 events
