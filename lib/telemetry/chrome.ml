(* Track layout: pid 0 = per-core tracks (tid = core id), pid 1 =
   per-task tracks (tid = task pid). *)

let core_pid = 0
let task_pid = 1

type item = Span of Event.t * Event.t | Instant of Event.t

(* Pair syscall enter/exit events within one track (same pid, nr and
   core, exit not before enter); everything unpaired is an instant. *)
let pair evs =
  let arr = Array.of_list evs in
  let n = Array.length arr in
  let consumed = Array.make n false in
  let items = ref [] in
  for i = 0 to n - 1 do
    if not consumed.(i) then
      match arr.(i).Event.payload with
      | Event.Syscall_enter { nr; pid; _ } ->
          let rec find j =
            if j >= n then None
            else if consumed.(j) then find (j + 1)
            else
              match arr.(j).Event.payload with
              | Event.Syscall_exit { nr = nr'; pid = pid'; _ }
                when nr' = nr && pid' = pid
                     && arr.(j).Event.cpu = arr.(i).Event.cpu
                     && arr.(j).Event.ts >= arr.(i).Event.ts ->
                  Some j
              | _ -> find (j + 1)
          in
          (match find (i + 1) with
          | Some j ->
              consumed.(j) <- true;
              items := Span (arr.(i), arr.(j)) :: !items
          | None -> items := Instant arr.(i) :: !items)
      | _ -> items := Instant arr.(i) :: !items
  done;
  List.rev !items

let event_name (p : Event.payload) =
  match p with
  | Event.Syscall_enter { name; _ } | Event.Syscall_exit { name; _ } -> name
  | _ -> Event.kind p

let obj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> "\"" ^ k ^ "\": " ^ v) fields)
  ^ "}"

let str s = "\"" ^ Json.escape s ^ "\""

let instant_json ~pid ~tid (ev : Event.t) =
  obj
    [
      ("name", str (event_name ev.payload));
      ("cat", str (Event.kind ev.payload));
      ("ph", str "i");
      ("s", str "t");
      ("ts", Printf.sprintf "%Ld" ev.ts);
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
      ("args", obj [ ("desc", str (Event.describe ev.payload)) ]);
    ]

let span_json ~pid ~tid (enter : Event.t) (exit_ : Event.t) =
  obj
    [
      ("name", str (event_name enter.payload));
      ("cat", str "syscall");
      ("ph", str "X");
      ("ts", Printf.sprintf "%Ld" enter.ts);
      ("dur", Printf.sprintf "%Ld" (Int64.sub exit_.ts enter.ts));
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
      ("args", obj [ ("desc", str (Event.describe exit_.payload)) ]);
    ]

let metadata_json ~pid ~tid ~meta ~name_ =
  obj
    [
      ("name", str meta);
      ("ph", str "M");
      ("ts", "0");
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
      ("args", obj [ ("name", str name_) ]);
    ]

let track_json ~pid ~tid evs =
  (* per-track ascending ts: task tracks can interleave cores whose
     cycle counters differ, so sort locally before pairing *)
  let evs =
    List.stable_sort
      (fun (a : Event.t) (b : Event.t) -> Int64.compare a.ts b.ts)
      evs
  in
  pair evs
  |> List.map (function
       | Span (en, ex) -> span_json ~pid ~tid en ex
       | Instant ev -> instant_json ~pid ~tid ev)

let serialize hub =
  let events = Hub.events hub in
  let metadata =
    metadata_json ~pid:core_pid ~tid:0 ~meta:"process_name" ~name_:"cores"
    :: metadata_json ~pid:task_pid ~tid:0 ~meta:"process_name" ~name_:"tasks"
    :: List.concat
         (List.init (Hub.cpus hub) (fun c ->
              [
                metadata_json ~pid:core_pid ~tid:c ~meta:"thread_name"
                  ~name_:(Printf.sprintf "cpu%d" c);
              ]))
  in
  let core_tracks =
    List.concat
      (List.init (Hub.cpus hub) (fun c ->
           track_json ~pid:core_pid ~tid:c
             (List.filter (fun (e : Event.t) -> e.cpu = c) events)))
  in
  let task_pids =
    List.filter_map (fun (e : Event.t) -> Event.pid_of e.payload) events
    |> List.sort_uniq compare
  in
  let task_meta =
    List.map
      (fun p ->
        metadata_json ~pid:task_pid ~tid:p ~meta:"thread_name"
          ~name_:(Printf.sprintf "pid %d" p))
      task_pids
  in
  let task_tracks =
    List.concat_map
      (fun p ->
        track_json ~pid:task_pid ~tid:p
          (List.filter
             (fun (e : Event.t) -> Event.pid_of e.payload = Some p)
             events))
      task_pids
  in
  let all = metadata @ task_meta @ core_tracks @ task_tracks in
  "{\"traceEvents\": [\n" ^ String.concat ",\n" all
  ^ "\n], \"displayTimeUnit\": \"ns\"}\n"

let text ?limit hub =
  let events = Hub.events hub in
  let events =
    match limit with
    | Some n ->
        let len = List.length events in
        if len > n then List.filteri (fun i _ -> i >= len - n) events
        else events
    | None -> events
  in
  let b = Buffer.create 512 in
  List.iter
    (fun ev ->
      Buffer.add_string b (Event.to_string ev);
      Buffer.add_char b '\n')
    events;
  let dropped = Hub.dropped hub in
  if dropped > 0 then
    Buffer.add_string b (Printf.sprintf "(%d older events dropped)\n" dropped);
  Buffer.contents b

let validate text =
  let ( let* ) = Result.bind in
  let* doc = Json.parse text in
  let* events =
    match Json.member "traceEvents" doc with
    | Some (Json.List evs) -> Ok evs
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "missing traceEvents"
  in
  let last : (int * int, int64) Hashtbl.t = Hashtbl.create 16 in
  let check i ev =
    let field name =
      match Json.member name ev with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "event %d: missing %s" i name)
    in
    let* name = field "name" in
    let* () =
      match name with
      | Json.Str _ -> Ok ()
      | _ -> Error (Printf.sprintf "event %d: name is not a string" i)
    in
    let* ph = field "ph" in
    let* ph =
      match ph with
      | Json.Str s -> Ok s
      | _ -> Error (Printf.sprintf "event %d: ph is not a string" i)
    in
    let num name =
      let* v = field name in
      match v with
      | Json.Num f -> Ok f
      | _ -> Error (Printf.sprintf "event %d: %s is not a number" i name)
    in
    let* pid = num "pid" in
    let* tid = num "tid" in
    if ph = "M" then Ok ()
    else
      let* ts = num "ts" in
      let* () =
        if ph = "X" then
          let* dur = num "dur" in
          if dur < 0.0 then
            Error (Printf.sprintf "event %d: negative dur" i)
          else Ok ()
        else Ok ()
      in
      let key = (int_of_float pid, int_of_float tid) in
      let ts64 = Int64.of_float ts in
      match Hashtbl.find_opt last key with
      | Some prev when ts64 < prev ->
          Error
            (Printf.sprintf
               "event %d: ts %Ld before %Ld on track (pid %d, tid %d)" i ts64
               prev (fst key) (snd key))
      | _ ->
          Hashtbl.replace last key ts64;
          Ok ()
  in
  let rec go i = function
    | [] -> Ok ()
    | ev :: rest ->
        let* () = check i ev in
        go (i + 1) rest
  in
  go 0 events
