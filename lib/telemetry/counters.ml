type insn_class =
  | Alu
  | Load
  | Store
  | Branch
  | Pac
  | Pacga
  | Aut
  | Auth_branch
  | Xpac
  | Sys
  | Exception

let class_count = 11

let class_index = function
  | Alu -> 0
  | Load -> 1
  | Store -> 2
  | Branch -> 3
  | Pac -> 4
  | Pacga -> 5
  | Aut -> 6
  | Auth_branch -> 7
  | Xpac -> 8
  | Sys -> 9
  | Exception -> 10

let class_name = function
  | Alu -> "alu"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Pac -> "pac"
  | Pacga -> "pacga"
  | Aut -> "aut"
  | Auth_branch -> "auth-branch"
  | Xpac -> "xpac"
  | Sys -> "sys"
  | Exception -> "exception"

let all_classes =
  [ Alu; Load; Store; Branch; Pac; Pacga; Aut; Auth_branch; Xpac; Sys; Exception ]

type t = {
  mutable retired : int64;
  mutable cycles : int64;
  classes : int64 array;
  mutable auth_failures : int64;
  mutable key_installs : int64;
  mutable exception_entries : int64;
  mutable exception_returns : int64;
  mutable mmu_walks : int64;
  mutable ipis_sent : int64;
  mutable ipis_received : int64;
}

type snapshot = {
  retired : int64;
  cycles : int64;
  classes : int64 array;
  auth_failures : int64;
  key_installs : int64;
  exception_entries : int64;
  exception_returns : int64;
  mmu_walks : int64;
  ipis_sent : int64;
  ipis_received : int64;
}

let create () : t =
  {
    retired = 0L;
    cycles = 0L;
    classes = Array.make class_count 0L;
    auth_failures = 0L;
    key_installs = 0L;
    exception_entries = 0L;
    exception_returns = 0L;
    mmu_walks = 0L;
    ipis_sent = 0L;
    ipis_received = 0L;
  }

let reset (t : t) =
  t.retired <- 0L;
  t.cycles <- 0L;
  Array.fill t.classes 0 class_count 0L;
  t.auth_failures <- 0L;
  t.key_installs <- 0L;
  t.exception_entries <- 0L;
  t.exception_returns <- 0L;
  t.mmu_walks <- 0L;
  t.ipis_sent <- 0L;
  t.ipis_received <- 0L

let retire (t : t) ~cls ~cycles =
  t.retired <- Int64.succ t.retired;
  t.cycles <- Int64.add t.cycles (Int64.of_int cycles);
  let i = class_index cls in
  t.classes.(i) <- Int64.succ t.classes.(i)

let count_auth_failure (t : t) = t.auth_failures <- Int64.succ t.auth_failures
let count_key_install (t : t) = t.key_installs <- Int64.succ t.key_installs

let count_exception_entry (t : t) =
  t.exception_entries <- Int64.succ t.exception_entries

let count_exception_return (t : t) =
  t.exception_returns <- Int64.succ t.exception_returns

let count_mmu_walk (t : t) = t.mmu_walks <- Int64.succ t.mmu_walks
let count_ipi_sent (t : t) = t.ipis_sent <- Int64.succ t.ipis_sent
let count_ipi_received (t : t) = t.ipis_received <- Int64.succ t.ipis_received

let snapshot (t : t) : snapshot =
  {
    retired = t.retired;
    cycles = t.cycles;
    classes = Array.copy t.classes;
    auth_failures = t.auth_failures;
    key_installs = t.key_installs;
    exception_entries = t.exception_entries;
    exception_returns = t.exception_returns;
    mmu_walks = t.mmu_walks;
    ipis_sent = t.ipis_sent;
    ipis_received = t.ipis_received;
  }

let restore (t : t) (s : snapshot) =
  t.retired <- s.retired;
  t.cycles <- s.cycles;
  Array.blit s.classes 0 t.classes 0 class_count;
  t.auth_failures <- s.auth_failures;
  t.key_installs <- s.key_installs;
  t.exception_entries <- s.exception_entries;
  t.exception_returns <- s.exception_returns;
  t.mmu_walks <- s.mmu_walks;
  t.ipis_sent <- s.ipis_sent;
  t.ipis_received <- s.ipis_received

let zero : snapshot =
  {
    retired = 0L;
    cycles = 0L;
    classes = Array.make class_count 0L;
    auth_failures = 0L;
    key_installs = 0L;
    exception_entries = 0L;
    exception_returns = 0L;
    mmu_walks = 0L;
    ipis_sent = 0L;
    ipis_received = 0L;
  }

let map2 f (a : snapshot) (b : snapshot) : snapshot =
  {
    retired = f a.retired b.retired;
    cycles = f a.cycles b.cycles;
    classes = Array.init class_count (fun i -> f a.classes.(i) b.classes.(i));
    auth_failures = f a.auth_failures b.auth_failures;
    key_installs = f a.key_installs b.key_installs;
    exception_entries = f a.exception_entries b.exception_entries;
    exception_returns = f a.exception_returns b.exception_returns;
    mmu_walks = f a.mmu_walks b.mmu_walks;
    ipis_sent = f a.ipis_sent b.ipis_sent;
    ipis_received = f a.ipis_received b.ipis_received;
  }

let diff ~after ~before = map2 Int64.sub after before
let merge a b = map2 Int64.add a b
let class_count_of (s : snapshot) cls = s.classes.(class_index cls)

let pac_ops s = Int64.add (class_count_of s Pac) (class_count_of s Pacga)
let aut_ops s = Int64.add (class_count_of s Aut) (class_count_of s Auth_branch)
let xpac_strips s = class_count_of s Xpac

let live_pac_ops (t : t) =
  Int64.add t.classes.(class_index Pac) t.classes.(class_index Pacga)

let live_aut_ops (t : t) =
  Int64.add t.classes.(class_index Aut) t.classes.(class_index Auth_branch)

let live_auth_failures (t : t) = t.auth_failures

let rows (s : snapshot) =
  [ ("retired", s.retired); ("cycles", s.cycles) ]
  @ List.map (fun c -> ("retired-" ^ class_name c, class_count_of s c)) all_classes
  @ [
      ("pac-ops", pac_ops s);
      ("aut-ops", aut_ops s);
      ("xpac-strips", xpac_strips s);
      ("auth-failures", s.auth_failures);
      ("key-installs", s.key_installs);
      ("exception-entries", s.exception_entries);
      ("exception-returns", s.exception_returns);
      ("mmu-walks", s.mmu_walks);
      ("ipis-sent", s.ipis_sent);
      ("ipis-received", s.ipis_received);
    ]

let to_string s =
  rows s
  |> List.filter (fun (k, v) -> v <> 0L || k = "retired" || k = "cycles")
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%Ld" k v)
  |> String.concat " "

let to_json s =
  rows s
  |> List.map (fun (k, v) -> Printf.sprintf "\"%s\": %Ld" k v)
  |> String.concat ", "
  |> Printf.sprintf "{ %s }"
