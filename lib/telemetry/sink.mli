(** One per-core telemetry endpoint: a counter file, a bounded event
    ring and an attribution profile. The interpreter holds at most one
    sink per core ([Cpu.attach_telemetry]); when absent, the whole
    subsystem costs one [option] match per instruction. *)

type t

val create : ?ring_depth:int -> cpu:int -> unit -> t
val cpu : t -> int
val counters : t -> Counters.t
val ring : t -> Ring.t
val profile : t -> Profile.t

(** Stamp and enqueue a structured event. *)
val emit : t -> ts:int64 -> Event.payload -> unit

(** Record one retired instruction into both the counter file and the
    profile. An active {!with_origin} override wins over [origin]. *)
val retire :
  t ->
  pc:int64 ->
  cls:Counters.insn_class ->
  origin:Profile.origin ->
  cycles:int ->
  unit

(** [with_origin t o f] — attribute every instruction retired during
    [f ()] to origin [o] (used around the XOM key-switch calls, whose
    generated code is otherwise indistinguishable from baseline ALU).
    Restores the previous override even on exception. *)
val with_origin : t -> Profile.origin -> (unit -> 'a) -> 'a

(** Reset counters, ring and profile (e.g. before a measured window). *)
val reset : t -> unit

(** Full endpoint capture (counters + ring + profile + origin
    override), for machine snapshots. *)
type captured

val capture : t -> captured
val restore : t -> captured -> unit
