(** Bounded per-core event ring. Oldest entries are overwritten once
    [depth] events are live; [dropped] counts the overwrites so a
    truncated trace is never mistaken for a complete one. *)

type t

(** @raise Invalid_argument if [depth <= 0]. *)
val create : depth:int -> t

val depth : t -> int
val push : t -> Event.t -> unit
val length : t -> int

(** Total events ever pushed. *)
val pushed : t -> int

(** [max 0 (pushed - depth)]. *)
val dropped : t -> int

(** Live events, oldest first. *)
val to_list : t -> Event.t list

val clear : t -> unit

(** Ring-content capture for machine snapshots ([restore] requires the
    same depth the capture was taken at). *)
type captured

val capture : t -> captured
val restore : t -> captured -> unit
