(** Sampling-free cycle attribution (PR 4 tentpole, layer 3).

    The interpreter reports every retired instruction's PC, cycle
    charge and {e instrumentation origin} — whether the instruction is
    part of the original program or was added by a CFI scheme (PAC
    signing, authentication, modifier arithmetic on the reserved
    x16/x17 registers, or the XOM key-switch routines). Cycles are
    bucketed exactly, per PC, so flat profiles and folded-stack
    ("flamegraph") output account for 100% of executed cycles — no
    sampling error. *)

type origin =
  | Baseline  (** the program as written, pre-instrumentation *)
  | Cfi_sign  (** PAC-constructing instructions (PACIA/PACGA/...) *)
  | Cfi_auth  (** AUT*/RETA*/BRA*/XPAC — authentication and strips *)
  | Cfi_modifier  (** modifier arithmetic on reserved ip0/ip1 *)
  | Cfi_key_switch  (** instructions inside the XOM key routines *)

val origin_count : int
val origin_index : origin -> int
val origin_name : origin -> string
val all_origins : origin list

(** [is_cfi o] — true for every origin except [Baseline]. *)
val is_cfi : origin -> bool

type t

val create : unit -> t
val reset : t -> unit
val record : t -> pc:int64 -> origin:origin -> cycles:int -> unit

(** Bucket-table capture for machine snapshots. Rows are copied both
    ways, so a captured profile is immune to later mutation. *)
type captured

val capture : t -> captured
val restore : t -> captured -> unit

(** Total attributed cycles. *)
val total : t -> int64

(** Per-origin cycle totals, every origin present, fixed order. *)
val by_origin : t -> (origin * int64) list

(** Half-open PC range labelled with a symbol name. *)
type sym = { sym_name : string; lo : int64; hi : int64 }

(** [ranges ~symbols ~limit] — turn a layout's [(name, addr)] list
    (ascending addresses) into half-open ranges, the last one closed
    at [limit]. *)
val ranges : symbols:(string * int64) list -> limit:int64 -> sym list

type line = { line_symbol : string; line_origin : origin; line_cycles : int64 }

(** Flat profile: cycles per (symbol, origin), descending by cycles.
    PCs outside every range fold into ["[unknown]"]. *)
val flat : t -> symbols:sym list -> line list

val flat_to_string : ?limit:int -> line list -> string

(** Folded-stack output, one ["symbol;origin cycles"] line per bucket
    (flamegraph.pl-compatible), sorted for byte-stability. *)
val folded : t -> symbols:sym list -> string
