(* Spans are *derived*, never emitted: a pure pass over the event
   stream pairs the begin/end markers the kernel and machine already
   record, so observation stays bit-identical whether or not anyone
   asks for latency. Pairing is first-in-first-out per key within one
   core's clock domain (IPIs cross domains and are only paired when
   the receive timestamp is not before the send, so durations are
   always non-negative). *)

type kind = Syscall | Context_switch | Ipi | Key_domain

let all_kinds = [ Syscall; Context_switch; Ipi; Key_domain ]

let kind_name = function
  | Syscall -> "syscall"
  | Context_switch -> "context-switch"
  | Ipi -> "ipi"
  | Key_domain -> "key-domain"

type t = {
  sp_kind : kind;
  sp_cpu : int;  (* the core whose clock the span lives on (IPI: sender) *)
  sp_start : int64;
  sp_dur : int64;
  sp_label : string;
}

(* FIFO pending-match queues keyed by an arbitrary key. *)
module Pending = struct
  type 'a t = (string, 'a list) Hashtbl.t

  let create () : 'a t = Hashtbl.create 16
  let push (q : 'a t) key v =
    Hashtbl.replace q key (Hashtbl.find_opt q key |> Option.value ~default:[] |> fun l -> l @ [ v ])

  (* pop the oldest entry satisfying [ok] *)
  let pop (q : 'a t) key ok =
    match Hashtbl.find_opt q key with
    | None | Some [] -> None
    | Some entries ->
        let rec go acc = function
          | [] -> None
          | e :: rest when ok e ->
              Hashtbl.replace q key (List.rev_append acc rest);
              Some e
          | e :: rest -> go (e :: acc) rest
        in
        go [] entries
end

let key_syscall cpu nr pid = Printf.sprintf "s:%d:%d:%d" cpu nr pid
let key_switch cpu f t = Printf.sprintf "c:%d:%d:%d" cpu f t
let key_keys cpu = Printf.sprintf "k:%d" cpu
let key_ipi src dst k = Printf.sprintf "i:%d:%d:%s" src dst k

(* One forward scan over the (already deterministically sorted) event
   list. Spans come out in end-event order, which is itself
   deterministic. *)
let of_events events =
  let pending : Event.t Pending.t = Pending.create () in
  let spans = ref [] in
  let emit sk (b : Event.t) ~cpu ~end_ts ~label =
    spans :=
      {
        sp_kind = sk;
        sp_cpu = cpu;
        sp_start = b.Event.ts;
        sp_dur = Int64.sub end_ts b.Event.ts;
        sp_label = label;
      }
      :: !spans
  in
  List.iter
    (fun (e : Event.t) ->
      match e.payload with
      | Event.Syscall_enter { nr; pid; _ } ->
          Pending.push pending (key_syscall e.cpu nr pid) e
      | Event.Syscall_exit { nr; pid; name; _ } -> (
          match
            Pending.pop pending (key_syscall e.cpu nr pid) (fun (b : Event.t) ->
                Int64.compare b.ts e.ts <= 0)
          with
          | Some b -> emit Syscall b ~cpu:e.cpu ~end_ts:e.ts ~label:name
          | None -> ())
      | Event.Context_switch { from_pid; to_pid } ->
          Pending.push pending (key_switch e.cpu from_pid to_pid) e
      | Event.Switch_done { from_pid; to_pid } -> (
          match
            Pending.pop pending
              (key_switch e.cpu from_pid to_pid)
              (fun (b : Event.t) -> Int64.compare b.ts e.ts <= 0)
          with
          | Some b ->
              emit Context_switch b ~cpu:e.cpu ~end_ts:e.ts
                ~label:(Printf.sprintf "pid %d -> %d" from_pid to_pid)
          | None -> ())
      | Event.Key_switch { domain = "kernel"; _ } ->
          Pending.push pending (key_keys e.cpu) e
      | Event.Key_switch { domain = "user"; _ } -> (
          (* kernel-key residency: the window the auth keys are live *)
          match
            Pending.pop pending (key_keys e.cpu) (fun (b : Event.t) ->
                Int64.compare b.ts e.ts <= 0)
          with
          | Some b -> emit Key_domain b ~cpu:e.cpu ~end_ts:e.ts ~label:"kernel-keys"
          | None -> ())
      | Event.Key_switch _ -> ()
      | Event.Ipi_send { dst; kind } ->
          Pending.push pending (key_ipi e.cpu dst kind) e
      | Event.Ipi_receive { srcs; kind } ->
          (* one coalesced receive acknowledges every pending send whose
             source it lists; cores have independent cycle counters, so
             only sends not after the receive pair up (no negative dur) *)
          List.iter
            (fun src ->
              match
                Pending.pop pending (key_ipi src e.cpu kind)
                  (fun (b : Event.t) -> Int64.compare b.ts e.ts <= 0)
              with
              | Some b -> emit Ipi b ~cpu:b.cpu ~end_ts:e.ts ~label:kind
              | None -> ())
            srcs
      | _ -> ())
    events;
  List.rev !spans

(* Per-kind histograms in the fixed [all_kinds] order — every kind is
   present (possibly empty) so fleet merges line up bucket-for-bucket
   without keying games. *)
let histograms events =
  let hists = List.map (fun k -> (k, Hist.create ())) all_kinds in
  List.iter
    (fun sp -> Hist.record (List.assoc sp.sp_kind hists) sp.sp_dur)
    (of_events events);
  hists

let merge_histograms a b =
  List.map
    (fun k ->
      let get l = try List.assoc k l with Not_found -> Hist.empty in
      (k, Hist.merge (get a) (get b)))
    all_kinds

let empty_histograms () = List.map (fun k -> (k, Hist.empty)) all_kinds

let histograms_to_json hists =
  "{"
  ^ String.concat ", "
      (List.map
         (fun k ->
           let h = try List.assoc k hists with Not_found -> Hist.empty in
           Printf.sprintf "\"%s\": %s" (kind_name k) (Hist.to_json h))
         all_kinds)
  ^ "}"
