(* Log-bucketed latency histogram in the HDR style: 32 sub-buckets per
   power-of-two octave, so every recorded value lands in a bucket whose
   width is at most 1/32 (~3.1%) of its lower bound. Values below 32
   get unit buckets and are exact. Counts are int64 and the merge is
   an exact bucket-wise add, which makes (empty, merge) a commutative
   monoid — the property the fleet engine's index-order fold relies
   on, mirroring [Counters.merge].

   Buckets are stored sparsely: a fleet campaign holds one histogram
   per in-flight trial until the index-order fold, and a trial touches
   a few dozen buckets, not the whole 2048-slot index space. *)

let sub_bucket_bits = 5
let sub_bucket_count = 1 lsl sub_bucket_bits (* 32 *)

(* Highest index reachable from a 62-bit value is well under 2048
   ((62 - 5 + 1) octaves of 32 buckets); values indexing past the end
   clamp into the last bucket. *)
let bucket_count = 2048

type t = {
  buckets : (int, int64) Hashtbl.t;  (* only non-zero counts present *)
  mutable total : int64;
  mutable sum : int64;
  (* min/max carry identity-friendly sentinels while empty so [merge]
     needs no empty-case branches: min x max_int = x, max x (-1) = x. *)
  mutable min_v : int64;
  mutable max_v : int64;
}

let create () =
  {
    buckets = Hashtbl.create 16;
    total = 0L;
    sum = 0L;
    min_v = Int64.max_int;
    max_v = -1L;
  }

let empty = create ()

(* floor(log2 v) for v >= 1 *)
let log2_floor v =
  let rec go e v = if v <= 1 then e else go (e + 1) (v lsr 1) in
  go 0 v

let index_of v =
  if v < sub_bucket_count then v
  else
    let e = log2_floor v in
    let sub = (v lsr (e - sub_bucket_bits)) - sub_bucket_count in
    let idx = ((e - sub_bucket_bits + 1) * sub_bucket_count) + sub in
    min idx (bucket_count - 1)

(* Lower bound of bucket [idx] — the value {!percentile} reports. *)
let bucket_low idx =
  if idx < sub_bucket_count then Int64.of_int idx
  else
    let octave = idx / sub_bucket_count and sub = idx mod sub_bucket_count in
    Int64.of_int ((sub_bucket_count + sub) lsl (octave - 1))

let bump t idx by =
  let prev = Option.value ~default:0L (Hashtbl.find_opt t.buckets idx) in
  Hashtbl.replace t.buckets idx (Int64.add prev by)

let record t v =
  let v = if Int64.compare v 0L < 0 then 0L else v in
  bump t (index_of (Int64.to_int v)) 1L;
  t.total <- Int64.succ t.total;
  t.sum <- Int64.add t.sum v;
  if Int64.compare v t.min_v < 0 then t.min_v <- v;
  if Int64.compare v t.max_v > 0 then t.max_v <- v

let count t = t.total
let is_empty t = t.total = 0L
let sum t = t.sum
let min_value t = if is_empty t then 0L else t.min_v
let max_value t = if is_empty t then 0L else t.max_v
let mean t = if is_empty t then 0.0 else Int64.to_float t.sum /. Int64.to_float t.total

(* Canonical view: non-zero (index, count) pairs sorted by index. *)
let sorted_buckets t =
  Hashtbl.fold (fun i c acc -> if c = 0L then acc else (i, c) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge a b =
  let m = create () in
  Hashtbl.iter (fun i c -> bump m i c) a.buckets;
  Hashtbl.iter (fun i c -> bump m i c) b.buckets;
  m.total <- Int64.add a.total b.total;
  m.sum <- Int64.add a.sum b.sum;
  m.min_v <- (if Int64.compare a.min_v b.min_v < 0 then a.min_v else b.min_v);
  m.max_v <- (if Int64.compare a.max_v b.max_v > 0 then a.max_v else b.max_v);
  m

let copy t = merge t empty

let equal a b =
  a.total = b.total && a.sum = b.sum && a.min_v = b.min_v && a.max_v = b.max_v
  && sorted_buckets a = sorted_buckets b

(* Value at quantile [q] (0 < q <= 1): walk the buckets to the rank
   ceil(q * count) and report that bucket's lower bound — exact below
   32, within one sub-bucket (<= 1/32 relative error) above. *)
let percentile t q =
  if is_empty t then 0L
  else begin
    let rank =
      let r = Int64.of_float (ceil (q *. Int64.to_float t.total)) in
      if Int64.compare r 1L < 0 then 1L
      else if Int64.compare r t.total > 0 then t.total
      else r
    in
    let rec walk acc = function
      | [] -> t.max_v
      | (i, c) :: rest ->
          let acc = Int64.add acc c in
          if Int64.compare acc rank >= 0 then bucket_low i else walk acc rest
    in
    walk 0L (sorted_buckets t)
  end

let p50 t = percentile t 0.50
let p90 t = percentile t 0.90
let p99 t = percentile t 0.99
let p999 t = percentile t 0.999

let to_string t =
  if is_empty t then "n=0"
  else
    Printf.sprintf "n=%Ld p50=%Ld p90=%Ld p99=%Ld p999=%Ld mean=%.1f max=%Ld"
      t.total (p50 t) (p90 t) (p99 t) (p999 t) (mean t) (max_value t)

(* Byte-stable rendering: fixed field order, buckets as sorted
   [index, count] pairs with zero buckets elided. *)
let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"count\": %Ld, \"sum\": %Ld, \"min\": %Ld, \"max\": %Ld, \
        \"p50\": %Ld, \"p90\": %Ld, \"p99\": %Ld, \"p999\": %Ld, \
        \"buckets\": ["
       t.total t.sum (min_value t) (max_value t) (p50 t) (p90 t) (p99 t)
       (p999 t));
  List.iteri
    (fun n (i, c) ->
      if n > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "[%d, %Ld]" i c))
    (sorted_buckets t);
  Buffer.add_string b "]}";
  Buffer.contents b
