(** Log-bucketed HDR-style latency histogram (PR 9 tentpole, layer 1).

    32 sub-buckets per power-of-two octave ([sub_bucket_bits] = 5):
    values below 32 are recorded exactly in unit buckets, larger values
    land in a bucket whose width is at most 1/32 (~3.1%) of its lower
    bound, so every reported percentile is the true value rounded down
    by less than one sub-bucket. Counts are int64 and {!merge} adds
    bucket-for-bucket, making [(empty, merge)] a commutative monoid —
    the law the fleet engine's index-order fold relies on, exactly as
    for {!Counters.merge}. *)

type t

val sub_bucket_bits : int
val bucket_count : int

val create : unit -> t

(** The merge identity. Shared and must never be recorded into; use
    {!create} for a histogram you intend to fill. *)
val empty : t

(** Record one sample. Negative values clamp to 0 (spans are derived
    with non-negative durations; the clamp keeps the histogram total
    equal to the number of recorded samples under any input). *)
val record : t -> int64 -> unit

(** Exact bucket-wise sum into a fresh histogram; commutative and
    associative, with {!empty} as identity. Arguments are unchanged. *)
val merge : t -> t -> t

val copy : t -> t

(** Structural equality (counts, total, sum, min, max). *)
val equal : t -> t -> bool

val count : t -> int64
val is_empty : t -> bool
val sum : t -> int64

(** 0 when empty. *)
val min_value : t -> int64

(** 0 when empty. *)
val max_value : t -> int64

(** 0.0 when empty. *)
val mean : t -> float

(** [percentile t q] for [0 < q <= 1]: lower bound of the bucket
    holding rank [ceil (q * count)] — exact below 32, within one
    sub-bucket above. 0 when empty. *)
val percentile : t -> float -> int64

val p50 : t -> int64
val p90 : t -> int64
val p99 : t -> int64
val p999 : t -> int64

(** Compact one-line human summary, ["n=0"] when empty. *)
val to_string : t -> string

(** Byte-stable single-line JSON: fixed field order ([count], [sum],
    [min], [max], [p50], [p90], [p99], [p999], [buckets]) with the
    non-zero buckets as sorted [[index, count]] pairs. *)
val to_json : t -> string

(**/**)

(** Exposed for the percentile-accuracy property tests. *)
val index_of : int -> int

val bucket_low : int -> int64
