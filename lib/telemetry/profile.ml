type origin = Baseline | Cfi_sign | Cfi_auth | Cfi_modifier | Cfi_key_switch

let origin_count = 5

let origin_index = function
  | Baseline -> 0
  | Cfi_sign -> 1
  | Cfi_auth -> 2
  | Cfi_modifier -> 3
  | Cfi_key_switch -> 4

let origin_name = function
  | Baseline -> "baseline"
  | Cfi_sign -> "cfi-sign"
  | Cfi_auth -> "cfi-auth"
  | Cfi_modifier -> "cfi-modifier"
  | Cfi_key_switch -> "cfi-key-switch"

let all_origins = [ Baseline; Cfi_sign; Cfi_auth; Cfi_modifier; Cfi_key_switch ]
let is_cfi = function Baseline -> false | _ -> true

type t = { buckets : (int64, int64 array) Hashtbl.t }

let create () = { buckets = Hashtbl.create 1024 }
let reset t = Hashtbl.reset t.buckets

let record t ~pc ~origin ~cycles =
  let row =
    match Hashtbl.find_opt t.buckets pc with
    | Some row -> row
    | None ->
        let row = Array.make origin_count 0L in
        Hashtbl.add t.buckets pc row;
        row
  in
  let i = origin_index origin in
  row.(i) <- Int64.add row.(i) (Int64.of_int cycles)

type captured = { c_buckets : (int64, int64 array) Hashtbl.t }

let capture t =
  let c = Hashtbl.create (Hashtbl.length t.buckets) in
  Hashtbl.iter (fun pc row -> Hashtbl.replace c pc (Array.copy row)) t.buckets;
  { c_buckets = c }

let restore t c =
  Hashtbl.reset t.buckets;
  Hashtbl.iter
    (fun pc row -> Hashtbl.replace t.buckets pc (Array.copy row))
    c.c_buckets

let total t =
  Hashtbl.fold
    (fun _ row acc -> Array.fold_left Int64.add acc row)
    t.buckets 0L

let by_origin t =
  let sums = Array.make origin_count 0L in
  Hashtbl.iter
    (fun _ row ->
      Array.iteri (fun i v -> sums.(i) <- Int64.add sums.(i) v) row)
    t.buckets;
  List.map (fun o -> (o, sums.(origin_index o))) all_origins

type sym = { sym_name : string; lo : int64; hi : int64 }

let ranges ~symbols ~limit =
  let sorted =
    List.sort (fun (_, a) (_, b) -> Int64.compare a b) symbols
  in
  let rec build = function
    | [] -> []
    | [ (name, lo) ] -> [ { sym_name = name; lo; hi = limit } ]
    | (name, lo) :: ((_, next) :: _ as rest) ->
        { sym_name = name; lo; hi = next } :: build rest
  in
  build sorted

let lookup symbols pc =
  let rec go = function
    | [] -> "[unknown]"
    | { sym_name; lo; hi } :: rest ->
        if pc >= lo && pc < hi then sym_name else go rest
  in
  go symbols

type line = { line_symbol : string; line_origin : origin; line_cycles : int64 }

let flat t ~symbols =
  let tbl : (string * int, int64 ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun pc row ->
      let sym = lookup symbols pc in
      Array.iteri
        (fun i v ->
          if v <> 0L then
            match Hashtbl.find_opt tbl (sym, i) with
            | Some r -> r := Int64.add !r v
            | None -> Hashtbl.add tbl (sym, i) (ref v))
        row)
    t.buckets;
  Hashtbl.fold
    (fun (sym, i) r acc ->
      {
        line_symbol = sym;
        line_origin = List.nth all_origins i;
        line_cycles = !r;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         match Int64.compare b.line_cycles a.line_cycles with
         | 0 -> (
             match compare a.line_symbol b.line_symbol with
             | 0 ->
                 compare (origin_index a.line_origin)
                   (origin_index b.line_origin)
             | c -> c)
         | c -> c)

let flat_to_string ?limit lines =
  let lines =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) lines
    | None -> lines
  in
  let tot =
    List.fold_left (fun a l -> Int64.add a l.line_cycles) 0L lines
  in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%10s %6s  %-14s %s\n" "cycles" "%" "origin" "symbol");
  List.iter
    (fun l ->
      let pct =
        if tot = 0L then 0.0
        else 100.0 *. Int64.to_float l.line_cycles /. Int64.to_float tot
      in
      Buffer.add_string b
        (Printf.sprintf "%10Ld %5.1f%%  %-14s %s\n" l.line_cycles pct
           (origin_name l.line_origin) l.line_symbol))
    lines;
  Buffer.contents b

let folded t ~symbols =
  flat t ~symbols
  |> List.map (fun l ->
         Printf.sprintf "%s;%s %Ld" l.line_symbol (origin_name l.line_origin)
           l.line_cycles)
  |> List.sort compare |> String.concat "\n"
