(** Chrome trace-event serialization (Perfetto / chrome://tracing).

    Layout: process 0 carries one thread ("track") per core, process 1
    one track per task pid. Matched syscall enter/exit pairs become
    complete ("X") duration events on both the core track and the
    task track; everything else is an instant ("i"). Events within a
    track are emitted in ascending [ts] order, which Perfetto requires
    and {!validate} checks. Timestamps are core-local cycle counts
    reported in the [ts] microsecond field — at the model's 1-cycle
    granularity this gives a faithful relative timeline. *)

(** Full trace-event JSON document for the hub's live events. *)
val serialize : Hub.t -> string

(** Compact per-line text dump of the merged timeline (newest last).
    [limit] keeps only the most recent events. *)
val text : ?limit:int -> Hub.t -> string

(** Validate a serialized trace: well-formed JSON, a [traceEvents]
    array, every event carrying [name]/[ph]/[ts]/[pid]/[tid], and
    [ts] monotone non-decreasing within each (pid, tid) track. *)
val validate : string -> (unit, string) result
