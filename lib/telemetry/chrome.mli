(** Chrome trace-event serialization (Perfetto / chrome://tracing).

    Layout: process 0 carries one thread ("track") per core, process 1
    one track per task pid. Matched begin/end pairs — syscall
    enter/exit, context-switch begin/done, the kernel->user key
    residency window, and (on core tracks) IPI send/receive — become
    complete ("X") duration events; everything else is an instant
    ("i"). Events within a track are emitted in ascending [ts] order,
    which Perfetto requires and {!validate} checks. Timestamps are
    core-local cycle counts reported in the [ts] microsecond field —
    at the model's 1-cycle granularity this gives a faithful relative
    timeline. *)

(** Full trace-event JSON document for the hub's live events. *)
val serialize : Hub.t -> string

(** Fleet view: one process per [(label, events)] lane with one thread
    per core, same span derivation as {!serialize}'s core tracks.
    Lane order and labels come from the caller, so a fleet engine
    passing deterministic trial labels gets a byte-identical document
    regardless of how many workers produced the events. *)
val serialize_lanes : (string * Event.t list) list -> string

(** Compact per-line text dump of the merged timeline (newest last).
    [limit] keeps only the most recent events. *)
val text : ?limit:int -> Hub.t -> string

(** Validate a serialized trace: well-formed JSON, a [traceEvents]
    array, every event carrying [name]/[ph]/[ts]/[pid]/[tid], ["X"]
    events with a non-negative [dur], and [ts] monotone non-decreasing
    within each (pid, tid) track. Every rejection carries the source
    position ("line L, column C (offset N)") of the offending value. *)
val validate : string -> (unit, string) result
