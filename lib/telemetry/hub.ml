type t = { sinks : Sink.t array }

let create ?ring_depth ~cpus () =
  if cpus <= 0 then invalid_arg "Hub.create: cpus";
  { sinks = Array.init cpus (fun cpu -> Sink.create ?ring_depth ~cpu ()) }

let cpus t = Array.length t.sinks
let sink t i = t.sinks.(i)
let sinks t = t.sinks

let counters t =
  Array.fold_left
    (fun acc s -> Counters.merge acc (Counters.snapshot (Sink.counters s)))
    Counters.zero t.sinks

let per_cpu t =
  Array.map (fun s -> Counters.snapshot (Sink.counters s)) t.sinks

let events t =
  Array.to_list t.sinks
  |> List.concat_map (fun s -> Ring.to_list (Sink.ring s))
  |> List.stable_sort (fun (a : Event.t) (b : Event.t) ->
         match Int64.compare a.ts b.ts with
         | 0 -> compare a.cpu b.cpu
         | c -> c)

let spans t = Span.of_events (events t)
let histograms t = Span.histograms (events t)

let dropped t =
  Array.fold_left (fun acc s -> acc + Ring.dropped (Sink.ring s)) 0 t.sinks

let reset t = Array.iter Sink.reset t.sinks

type captured = { c_sinks : Sink.captured array }

let capture t = { c_sinks = Array.map Sink.capture t.sinks }
let restore t c = Array.iteri (fun i s -> Sink.restore t.sinks.(i) s) c.c_sinks
