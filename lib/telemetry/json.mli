(** Minimal JSON support for the Chrome serializer and its validator.
    Hand-rolled on purpose: the container image must not grow a JSON
    dependency, and the validator only needs well-formedness plus
    field access. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

(** Escape a string for embedding inside JSON quotes. *)
val escape : string -> string

(** Strict-enough recursive-descent parse of a complete document;
    trailing garbage is an error. *)
val parse : string -> (value, string) result

val member : string -> value -> value option
