(** Minimal JSON support for the Chrome serializer and its validator.
    Hand-rolled on purpose: the container image must not grow a JSON
    dependency, and the validator only needs well-formedness plus
    field access — now with source positions so semantic errors can
    blame an exact location (the [Snapshot.Json] line/col idiom). *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

(** Position-annotated tree: [pos] is the byte offset of the value's
    first character in the parsed text. *)
type located = { v : lvalue; pos : int }

and lvalue =
  | LNull
  | LBool of bool
  | LNum of float
  | LStr of string
  | LList of located list
  | LObj of (string * located) list

(** Escape a string for embedding inside JSON quotes. *)
val escape : string -> string

(** 1-based (line, column) of a byte offset. *)
val line_col : string -> int -> int * int

(** ["line %d, column %d (offset %d)"] for a byte offset. *)
val position : string -> int -> string

(** Strict-enough recursive-descent parse of a complete document;
    trailing garbage is an error. Error messages carry
    {!position}-formatted locations. *)
val parse : string -> (value, string) result

(** Like {!parse}, but keeps the byte offset of every value. *)
val parse_located : string -> (located, string) result

(** Drop the positions. *)
val strip : located -> value

val member : string -> value -> value option
val lmember : string -> located -> located option
