type t = {
  buf : Event.t option array;
  mutable pos : int;  (* next write slot *)
  mutable total : int;
}

let create ~depth =
  if depth <= 0 then invalid_arg "Ring.create: depth";
  { buf = Array.make depth None; pos = 0; total = 0 }

let depth t = Array.length t.buf

let push t ev =
  t.buf.(t.pos) <- Some ev;
  t.pos <- (t.pos + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let length t = min t.total (Array.length t.buf)
let pushed t = t.total
let dropped t = max 0 (t.total - Array.length t.buf)

let to_list t =
  let n = Array.length t.buf in
  let acc = ref [] in
  for i = 1 to n do
    (* newest is at pos-1; walk backwards collecting into acc so the
       result comes out oldest-first *)
    match t.buf.((t.pos - i + (2 * n)) mod n) with
    | Some ev -> acc := ev :: !acc
    | None -> ()
  done;
  !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.pos <- 0;
  t.total <- 0

type captured = { c_buf : Event.t option array; c_pos : int; c_total : int }

let capture t = { c_buf = Array.copy t.buf; c_pos = t.pos; c_total = t.total }

let restore t c =
  Array.blit c.c_buf 0 t.buf 0 (Array.length t.buf);
  t.pos <- c.c_pos;
  t.total <- c.c_total
