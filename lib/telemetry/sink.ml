type t = {
  cpu : int;
  counters : Counters.t;
  ring : Ring.t;
  profile : Profile.t;
  mutable origin_override : Profile.origin option;
}

let default_ring_depth = 4096

let create ?(ring_depth = default_ring_depth) ~cpu () =
  {
    cpu;
    counters = Counters.create ();
    ring = Ring.create ~depth:ring_depth;
    profile = Profile.create ();
    origin_override = None;
  }

let cpu t = t.cpu
let counters t = t.counters
let ring t = t.ring
let profile t = t.profile

let emit t ~ts payload = Ring.push t.ring { Event.ts; cpu = t.cpu; payload }

let retire t ~pc ~cls ~origin ~cycles =
  Counters.retire t.counters ~cls ~cycles;
  let origin =
    match t.origin_override with Some o -> o | None -> origin
  in
  Profile.record t.profile ~pc ~origin ~cycles

let with_origin t o f =
  let saved = t.origin_override in
  t.origin_override <- Some o;
  Fun.protect ~finally:(fun () -> t.origin_override <- saved) f

let reset t =
  Counters.reset t.counters;
  Ring.clear t.ring;
  Profile.reset t.profile;
  t.origin_override <- None
