type t = {
  cpu : int;
  counters : Counters.t;
  ring : Ring.t;
  profile : Profile.t;
  mutable origin_override : Profile.origin option;
}

let default_ring_depth = 4096

let create ?(ring_depth = default_ring_depth) ~cpu () =
  {
    cpu;
    counters = Counters.create ();
    ring = Ring.create ~depth:ring_depth;
    profile = Profile.create ();
    origin_override = None;
  }

let cpu t = t.cpu
let counters t = t.counters
let ring t = t.ring
let profile t = t.profile

let emit t ~ts payload = Ring.push t.ring { Event.ts; cpu = t.cpu; payload }

let retire t ~pc ~cls ~origin ~cycles =
  Counters.retire t.counters ~cls ~cycles;
  let origin =
    match t.origin_override with Some o -> o | None -> origin
  in
  Profile.record t.profile ~pc ~origin ~cycles

let with_origin t o f =
  let saved = t.origin_override in
  t.origin_override <- Some o;
  Fun.protect ~finally:(fun () -> t.origin_override <- saved) f

let reset t =
  Counters.reset t.counters;
  Ring.clear t.ring;
  Profile.reset t.profile;
  t.origin_override <- None

type captured = {
  c_counters : Counters.snapshot;
  c_ring : Ring.captured;
  c_profile : Profile.captured;
  c_origin_override : Profile.origin option;
}

let capture t =
  {
    c_counters = Counters.snapshot t.counters;
    c_ring = Ring.capture t.ring;
    c_profile = Profile.capture t.profile;
    c_origin_override = t.origin_override;
  }

let restore t c =
  Counters.restore t.counters c.c_counters;
  Ring.restore t.ring c.c_ring;
  Profile.restore t.profile c.c_profile;
  t.origin_override <- c.c_origin_override
