(** Span derivation (PR 9 tentpole, layer 2).

    Spans are computed, never emitted: a pure pass over the already
    deterministic event stream pairs the begin/end markers the kernel
    records — [Syscall_enter]/[Syscall_exit], [Context_switch]/
    [Switch_done], [Ipi_send]/[Ipi_receive], and the kernel-key
    residency window between a ["kernel"] and the next ["user"]
    [Key_switch] on the same core. Observed runs therefore stay
    bit-identical to unobserved runs: asking for latency is a fold,
    not a probe.

    Pairing is first-in-first-out per (core, key) within one core's
    clock domain. IPIs cross clock domains, so a send only pairs with
    a receive not before it — durations are always non-negative. *)

type kind = Syscall | Context_switch | Ipi | Key_domain

(** Fixed order: [Syscall; Context_switch; Ipi; Key_domain]. *)
val all_kinds : kind list

(** ["syscall"], ["context-switch"], ["ipi"], ["key-domain"]. *)
val kind_name : kind -> string

type t = {
  sp_kind : kind;
  sp_cpu : int;  (** core whose clock the span lives on (IPI: sender) *)
  sp_start : int64;
  sp_dur : int64;  (** always >= 0 *)
  sp_label : string;
}

(** Derive all spans from an event list (normally {!Hub.events}), in
    end-event order. Unmatched begin markers produce no span. *)
val of_events : Event.t list -> t list

(** Per-kind latency histograms over {!of_events}; every kind from
    {!all_kinds} is present (possibly empty) so fleet merges line up
    without keying. *)
val histograms : Event.t list -> (kind * Hist.t) list

(** Kind-wise {!Hist.merge}; missing kinds count as empty. *)
val merge_histograms :
  (kind * Hist.t) list -> (kind * Hist.t) list -> (kind * Hist.t) list

val empty_histograms : unit -> (kind * Hist.t) list

(** Byte-stable single-line JSON object keyed by {!kind_name} in
    {!all_kinds} order, each value a {!Hist.to_json} rendering. *)
val histograms_to_json : (kind * Hist.t) list -> string
