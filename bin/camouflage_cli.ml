(* Command-line front end: boot reports, attack demonstrations, the
   semantic-search census and instrumentation listings. *)

open Cmdliner
open Aarch64
module C = Camouflage
module K = Kernel

let config_of_string = function
  | "full" -> Ok C.Config.full
  | "backward" -> Ok C.Config.backward_only
  | "compat" -> Ok C.Config.compat
  | "none" -> Ok C.Config.none
  | "sp-only" -> Ok { C.Config.backward_only with scheme = C.Modifier.Sp_only }
  | "parts" -> Ok { C.Config.backward_only with scheme = C.Modifier.Parts 0x7357L }
  | "chained" -> Ok { C.Config.backward_only with scheme = C.Modifier.Chained }
  | s -> Error (`Msg (Printf.sprintf "unknown config %S" s))

let config_conv =
  Arg.conv
    ( config_of_string,
      fun fmt config -> Format.pp_print_string fmt (C.Config.name config) )

let config_arg =
  let doc = "Protection configuration: full, backward, compat, none, sp-only, parts, chained." in
  Arg.(value & opt config_conv C.Config.full & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)

let seed_arg =
  let doc = "PRNG seed driving key generation and synthetic inputs." in
  Arg.(value & opt int64 42L & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let cpus_arg =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 && n <= 16 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "cpu count %d out of range (1-16)" n))
    | None -> Error (`Msg (Printf.sprintf "invalid cpu count %S" s))
  in
  let cpus_conv = Arg.conv (parse, Format.pp_print_int) in
  let doc = "Number of simulated cores to boot (1-16)." in
  Arg.(value & opt cpus_conv 1 & info [ "cpus" ] ~docv:"N" ~doc)

let no_icache_arg =
  let doc =
    "Disable the simulator's decoded-instruction cache and micro-TLB. \
     Host speed only: execution is bit-identical either way (same guest \
     state, cycles, telemetry); this flag exists for differential checks \
     and debugging."
  in
  Arg.(value & flag & info [ "no-icache" ] ~doc)

let exec_tier_arg =
  let parse s =
    match Cpu.tier_of_string s with
    | Some t -> Ok t
    | None ->
        Error (`Msg (Printf.sprintf "unknown tier %S (interp|icache|traces)" s))
  in
  let tconv =
    Arg.conv (parse, fun fmt t -> Format.pp_print_string fmt (Cpu.tier_name t))
  in
  let doc =
    "Execution tier: $(b,interp) (plain decode-and-dispatch), $(b,icache) \
     (decoded-instruction cache and micro-TLB; the default), or $(b,traces) \
     (superblock trace compilation on top of the icache). Host speed only: \
     execution is bit-identical across tiers. Overrides the deprecated \
     $(b,--no-icache)."
  in
  Arg.(value & opt (some tconv) None & info [ "exec-tier" ] ~docv:"TIER" ~doc)

(* [--no-icache] is the deprecated spelling of [--exec-tier interp];
   an explicit [--exec-tier] wins. *)
let resolve_tier no_icache tier =
  match tier with
  | Some _ -> tier
  | None -> if no_icache then Some Cpu.Interp else None

let boot_cmd =
  let run config seed cpus no_icache tier =
    let tier = resolve_tier no_icache tier in
    let sys = K.System.boot ~config ~seed ~cpus ?tier () in
    Printf.printf "configuration : %s\n" (C.Config.name config);
    Printf.printf "exec tier     : %s\n"
      (Cpu.tier_name (Cpu.tier (K.System.cpu sys)));
    Printf.printf "cores         : %d\n" (K.System.cpus sys);
    (match K.System.unkeyed_cpus sys with
    | [] ->
        if K.System.kernel_uses_pauth sys then
          Printf.printf "key audit     : all cores hold the kernel keys\n"
    | bad ->
        List.iter
          (fun (cid, keys) ->
            Printf.printf "key audit     : cpu%d missing %d keys!\n" cid
              (List.length keys))
          bad);
    Printf.printf "kernel PAC    : %d bits (48-bit VA, no tags)\n"
      (Vaddr.pac_bits (Cpu.kernel_cfg (K.System.cpu sys)));
    Printf.printf "keys in use   : %s\n"
      (String.concat ", "
         (List.map
            (fun k ->
              match k with
              | Sysreg.IA -> "IA (forward-edge CFI)"
              | Sysreg.IB -> "IB (backward-edge CFI)"
              | Sysreg.DA -> "DA"
              | Sysreg.DB -> "DB (DFI)"
              | Sysreg.GA -> "GA")
            (C.Keys.keys_in_use config.C.Config.mode)));
    Printf.printf "XOM setter    : 0x%Lx (%d bytes, execute-only via stage 2)\n"
      (K.System.xom sys).K.Xom.setter_addr (K.System.xom sys).K.Xom.bytes;
    Printf.printf "init task     : pid %d\n" (K.System.current sys).K.System.pid;
    Printf.printf "\nboot log:\n";
    List.iter (fun l -> Printf.printf "  %s\n" l) (K.System.log sys)
  in
  let doc = "Boot the protected kernel and print a system report." in
  Cmd.v (Cmd.info "boot" ~doc)
    Term.(
      const run $ config_arg $ seed_arg $ cpus_arg $ no_icache_arg
      $ exec_tier_arg)

let attack_names = [ "rop"; "fops"; "replay"; "temporal"; "bruteforce"; "cred"; "cred-replay" ]

let attack_cmd =
  let attack_arg =
    let doc = Printf.sprintf "Attack to run: %s." (String.concat ", " attack_names) in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTACK" ~doc)
  in
  let run config seed cpus no_icache tier name =
    let sys = K.System.boot ~config ~seed ~cpus ?tier:(resolve_tier no_icache tier) () in
    Printf.printf "kernel build: %s (%d cores)\n" (C.Config.name config) cpus;
    (match name with
    | "rop" -> Printf.printf "%s\n" (Attacks.Rop.outcome_to_string (Attacks.Rop.run sys))
    | "fops" ->
        Printf.printf "%s\n"
          (Attacks.Fptr_hijack.outcome_to_string (Attacks.Fptr_hijack.run sys))
    | "replay" ->
        Printf.printf "%s\n"
          (Attacks.Replay.outcome_to_string (Attacks.Replay.cross_task_switch_frame sys))
    | "bruteforce" ->
        Printf.printf "%s\n"
          (Attacks.Bruteforce_attack.report_to_string
             (Attacks.Bruteforce_attack.run sys ~attempts:64 ~seed))
    | "temporal" ->
        Printf.printf "%s\n"
          (Attacks.Temporal_replay.outcome_to_string
             (Attacks.Temporal_replay.run config.C.Config.scheme))
    | "cred" ->
        Printf.printf "%s\n"
          (Attacks.Cred_hijack.outcome_to_string
             (Attacks.Cred_hijack.run sys Attacks.Cred_hijack.Raw))
    | "cred-replay" ->
        Printf.printf "%s\n"
          (Attacks.Cred_hijack.outcome_to_string
             (Attacks.Cred_hijack.run sys Attacks.Cred_hijack.Replayed))
    | other -> Printf.printf "unknown attack %S (try: %s)\n" other (String.concat ", " attack_names));
    Printf.printf "\nkernel log:\n";
    List.iter (fun l -> Printf.printf "  %s\n" l) (K.System.log sys)
  in
  let doc = "Run an attack scenario against the booted kernel." in
  Cmd.v (Cmd.info "attack" ~doc)
    Term.(
      const run $ config_arg $ seed_arg $ cpus_arg $ no_icache_arg
      $ exec_tier_arg $ attack_arg)

let census_cmd =
  let run seed =
    let corpus = Sempatch.Corpus.generate ~seed () in
    let census = Sempatch.Analysis.run corpus in
    Printf.printf "compound types scanned              : %d\n"
      (Sempatch.Cast.struct_count corpus);
    Printf.printf "functions scanned                   : %d\n"
      (Sempatch.Cast.function_count corpus);
    Printf.printf "run-time-assigned fn-ptr members    : %d\n"
      census.Sempatch.Analysis.member_count;
    Printf.printf "containing types                    : %d\n"
      census.Sempatch.Analysis.type_count;
    Printf.printf "types with >1 pointer (to ops)      : %d\n"
      census.Sempatch.Analysis.multi_member_type_count;
    Printf.printf "lone pointers needing PAuth         : %d\n"
      census.Sempatch.Analysis.needs_pac
  in
  let doc = "Run the semantic search census over the synthetic kernel corpus." in
  Cmd.v (Cmd.info "census" ~doc) Term.(const run $ seed_arg)

let disasm_cmd =
  let run config =
    let f = C.Instrument.wrap config ~name:"function" [ Asm.ins Insn.Nop ] in
    let prog = Asm.create () in
    Asm.add_function prog ~name:"function" f.C.Instrument.items;
    let layout = Asm.assemble prog ~base:0xffff000000100000L in
    Printf.printf "instrumented prologue/epilogue for %s:\n\n%s"
      (C.Config.name config) (Asm.disassemble layout)
  in
  let doc = "Show the instrumented function shape for a configuration." in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const run $ config_arg)

let integrity_cmd =
  let run config seed no_icache tier =
    let sys = K.System.boot ~config ~seed ?tier:(resolve_tier no_icache tier) () in
    Printf.printf "syscall-table PACGA attestation: %s\n"
      (if K.System.verify_syscall_table sys then "OK" else "MISMATCH");
    (* tamper (bypassing stage 2, modeling a protection lapse) and recheck *)
    let table = K.System.kernel_symbol sys "sys_call_table" in
    K.Kmem.write64 (K.System.cpu sys) (Int64.add table 8L) 0xbadL;
    Printf.printf "after tampering:                 %s\n"
      (if K.System.verify_syscall_table sys then "OK (undetected!)" else "MISMATCH detected")
  in
  let doc = "Demonstrate the PACGA kernel integrity monitor." in
  Cmd.v (Cmd.info "integrity" ~doc)
    Term.(const run $ config_arg $ seed_arg $ no_icache_arg $ exec_tier_arg)

(* Boot with telemetry, run the SMP syscall workload, return the hub. *)
let telemetry_run ?tier ~config ~seed ~cpus ~tasks ~rounds () =
  let sys = K.System.boot ~config ~seed ~cpus ?tier ~telemetry:true () in
  let layout =
    K.System.map_user_program sys (Workloads.Smp.throughput_program ~rounds)
  in
  let entry = Asm.symbol layout "throughput" in
  let spawned = List.init tasks (fun _ -> K.System.spawn_user_task sys ~entry) in
  let stats = K.System.run_smp ~quantum:500 sys ~tasks:spawned in
  let hub =
    match K.System.telemetry sys with
    | Some h -> h
    | None -> failwith "telemetry boot carries no hub"
  in
  (sys, hub, stats)

let trace_cmd =
  let chrome_arg =
    let doc =
      "Run an SMP syscall workload under telemetry and write the event \
       timeline to $(docv) as Chrome trace-event JSON (load in Perfetto or \
       chrome://tracing)."
    in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  let validate_arg =
    let doc =
      "Validate $(docv) as trace-event JSON (well-formed, required fields, \
       monotone timestamps per track); exit non-zero on failure."
    in
    Arg.(value & opt (some string) None & info [ "validate" ] ~docv:"FILE" ~doc)
  in
  let text_arg =
    let doc = "Print the telemetry event timeline as text instead of JSON." in
    Arg.(value & flag & info [ "text" ] ~doc)
  in
  let run config seed cpus no_icache exec_tier chrome validate text =
    let tier = resolve_tier no_icache exec_tier in
    match (chrome, validate, text) with
    | _, Some path, _ ->
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let doc = really_input_string ic n in
        close_in ic;
        (match Telemetry.Chrome.validate doc with
        | Ok () -> Printf.printf "%s: valid trace-event JSON\n" path
        | Error e ->
            Printf.eprintf "%s: INVALID trace: %s\n" path e;
            exit 1)
    | Some path, _, _ ->
        let _, hub, stats =
          telemetry_run ~config ~seed ~cpus:(max cpus 2) ?tier ~tasks:8
            ~rounds:20 ()
        in
        let doc = Telemetry.Chrome.serialize hub in
        (match Telemetry.Chrome.validate doc with
        | Ok () -> ()
        | Error e -> failwith ("serializer produced an invalid trace: " ^ e));
        let oc = open_out path in
        output_string oc doc;
        close_out oc;
        Printf.printf
          "wrote %d events (%d dropped) from %d cores to %s (makespan %Ld cycles)\n"
          (List.length (Telemetry.Hub.events hub))
          (Telemetry.Hub.dropped hub)
          (Telemetry.Hub.cpus hub) path stats.K.System.makespan
    | None, None, true ->
        let _, hub, _ =
          telemetry_run ~config ~seed ~cpus:(max cpus 2) ?tier ~tasks:8
            ~rounds:20 ()
        in
        print_string (Telemetry.Chrome.text ~limit:200 hub)
    | None, None, false ->
        let sys = K.System.boot ~config ~seed ?tier () in
        Printf.printf "running the f_ops hijack to provoke a PAC failure...\n";
        Printf.printf "%s\n\n"
          (Attacks.Fptr_hijack.outcome_to_string (Attacks.Fptr_hijack.run sys));
        Printf.printf "last instructions retired before the stop:\n";
        List.iter
          (fun (pc, insn) -> Printf.printf "  %Lx: %s\n" pc (Insn.to_string insn))
          (Cpu.recent_trace ~limit:12 (K.System.cpu sys));
        Printf.printf "\nkernel log:\n";
        List.iter (fun l -> Printf.printf "  %s\n" l) (K.System.log sys)
  in
  let doc =
    "Dump execution traces: by default, provoke a PAC failure and show the \
     CPU trace ring; with $(b,--chrome)/$(b,--text), run an SMP workload \
     under telemetry and emit the cycle-stamped event timeline."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ config_arg $ seed_arg $ cpus_arg $ no_icache_arg
      $ exec_tier_arg $ chrome_arg $ validate_arg $ text_arg)

let print_hist_table hists =
  Printf.printf "span latency (cycles, log-bucketed: values exact to 1/32)\n";
  Printf.printf "  %-16s %8s %8s %8s %8s %8s\n" "kind" "count" "p50" "p90" "p99"
    "max";
  List.iter
    (fun (kind, h) ->
      if Telemetry.Hist.is_empty h then
        Printf.printf "  %-16s %8s\n" (Telemetry.Span.kind_name kind) "-"
      else
        Printf.printf "  %-16s %8Ld %8Ld %8Ld %8Ld %8Ld\n"
          (Telemetry.Span.kind_name kind) (Telemetry.Hist.count h)
          (Telemetry.Hist.p50 h) (Telemetry.Hist.p90 h) (Telemetry.Hist.p99 h)
          (Telemetry.Hist.max_value h))
    hists

let stats_cmd =
  let json_arg =
    let doc = "Emit the merged counter file as a JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let hist_arg =
    let doc =
      "Also print the span latency histograms (syscall, context switch, IPI, \
       kernel-key residency) derived from the telemetry event rings; with \
       $(b,--json), embed them as a span_hists object."
    in
    Arg.(value & flag & info [ "hist" ] ~doc)
  in
  let run config seed cpus no_icache tier json hist =
    let cpus = max cpus 2 in
    let _, hub, stats =
      telemetry_run ~config ~seed ~cpus ?tier:(resolve_tier no_icache tier)
        ~tasks:8 ~rounds:20 ()
    in
    let merged = Telemetry.Hub.counters hub in
    if json then
      if hist then
        Printf.printf "{\"counters\": %s, \"span_hists\": %s}\n"
          (Telemetry.Counters.to_json merged)
          (Telemetry.Span.histograms_to_json (Telemetry.Hub.histograms hub))
      else print_string (Telemetry.Counters.to_json merged ^ "\n")
    else begin
      Printf.printf
        "PMU counter files after an 8-task syscall workload (%s, %d cores, \
         makespan %Ld cycles)\n\n"
        (C.Config.name config) cpus stats.K.System.makespan;
      Array.iteri
        (fun cid snap ->
          Printf.printf "cpu%d:\n%s\n" cid (Telemetry.Counters.to_string snap))
        (Telemetry.Hub.per_cpu hub);
      Printf.printf "machine (all cores merged):\n%s"
        (Telemetry.Counters.to_string merged);
      if hist then begin
        Printf.printf "\n";
        print_hist_table (Telemetry.Hub.histograms hub)
      end
    end
  in
  let doc =
    "Run an SMP syscall workload with telemetry enabled and print the \
     per-core and merged PMU-style counter files (and, with $(b,--hist), \
     the span latency histograms)."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const run $ config_arg $ seed_arg $ cpus_arg $ no_icache_arg
      $ exec_tier_arg $ json_arg $ hist_arg)

let lint_cmd =
  let json_arg =
    let doc = "Emit the selected report as byte-stable JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let calls_arg =
    let doc = "Print the reconstructed call graph instead of diagnostics." in
    Arg.(value & flag & info [ "calls" ] ~doc)
  in
  let gadgets_arg =
    let doc =
      "Print the modifier-collision gadget census (every PAC/AUT site \
       partitioned by key and modifier-expression class, cross-function \
       substitution pairs, static forgery probability) instead of \
       diagnostics."
    in
    Arg.(value & flag & info [ "gadgets" ] ~doc)
  in
  let scheme_arg =
    let parse s =
      match Paclint.Rules.scheme_of_string s with
      | Some sc -> Ok sc
      | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
    in
    let sconv =
      Arg.conv
        (parse, fun fmt sc -> Format.pp_print_string fmt (Paclint.Rules.scheme_name sc))
    in
    let doc =
      "Override the rule pack: generic, sp-only, parts, camouflage, chained. \
       Default: the pack matching the configuration's own scheme."
    in
    Arg.(value & opt (some sconv) None & info [ "scheme" ] ~docv:"SCHEME" ~doc)
  in
  let workers_arg =
    let doc =
      "Run the per-function analysis rounds on $(docv) fleet worker domains. \
       Diagnostics and census are byte-identical for every worker count."
    in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let module_arg =
    let doc =
      "Lint a standalone .kelf module object (written by $(b,camouflage \
       modgen)) against the kernel export surface instead of the kernel \
       image."
    in
    Arg.(value & opt (some string) None & info [ "module" ] ~docv:"FILE" ~doc)
  in
  let run config json calls gadgets scheme workers module_path =
    let par =
      if workers <= 1 then Paclint.Lint.seq_par
      else { Paclint.Lint.pmap = (fun ~jobs f -> Fleet.Pool.map ~workers ~jobs f) }
    in
    let subject, report =
      match module_path with
      | None -> (C.Config.name config ^ " kernel image", K.Kbuild.lint_report ~par ?scheme config)
      | Some path -> (
          match Kelf.Object_file.read_file path with
          | Ok obj ->
              ( Printf.sprintf "%s (module %s, %s exports)" obj.Kelf.Object_file.obj_name
                  path "kernel",
                K.Kbuild.lint_module ~par ?scheme config obj )
          | Error e ->
              Printf.eprintf "%s\n" e;
              exit 2)
    in
    let diags = report.K.Kbuild.diags in
    let errors = List.filter Paclint.Diag.is_error diags in
    let summary = report.K.Kbuild.summary in
    if calls then begin
      let cg = summary.Paclint.Summary.cg in
      if json then print_string (Paclint.Callgraph.to_json cg)
      else begin
        Array.iter
          (fun fn ->
            Printf.printf "%s (0x%Lx, %d insns)\n"
              (match fn.Paclint.Callgraph.name with
              | Some n -> n
              | None -> "<anon>")
              fn.Paclint.Callgraph.entry
              (fn.Paclint.Callgraph.hi - fn.Paclint.Callgraph.lo);
            List.iter
              (fun c ->
                Printf.printf "  %Lx: %s -> %s\n" c.Paclint.Callgraph.site
                  (match c.Paclint.Callgraph.kind with
                  | Paclint.Callgraph.Direct -> "bl  "
                  | Paclint.Callgraph.Indirect -> "blr "
                  | Paclint.Callgraph.Tail -> "tail")
                  (match c.Paclint.Callgraph.target with
                  | Some t -> (
                      match Paclint.Callgraph.fn_index cg t with
                      | Some j -> (
                          match cg.Paclint.Callgraph.fns.(j).Paclint.Callgraph.name with
                          | Some n -> n
                          | None -> Printf.sprintf "0x%Lx" t)
                      | None -> Printf.sprintf "0x%Lx (external)" t)
                  | None -> "?unresolved"))
              fn.Paclint.Callgraph.calls)
          cg.Paclint.Callgraph.fns;
        Printf.printf
          "%s: %d functions, %d unresolved indirect call sites, %d summary rounds\n"
          subject
          (Array.length cg.Paclint.Callgraph.fns)
          (Paclint.Callgraph.unresolved_count cg)
          summary.Paclint.Summary.rounds
      end
    end
    else if gadgets then begin
      let census = report.K.Kbuild.census in
      if json then print_string (Paclint.Census.to_json census)
      else begin
        print_string (Paclint.Census.table census);
        let sc =
          match scheme with
          | Some sc -> sc
          | None -> C.Verifier.rules_scheme config
        in
        Printf.printf "\nrule pack (%s):\n" (Paclint.Rules.scheme_name sc);
        List.iter
          (fun r ->
            Printf.printf "  %-24s %s\n" r.Paclint.Rules.name r.Paclint.Rules.describes)
          (Paclint.Rules.pack sc)
      end
    end
    else if json then print_string (Paclint.Diag.list_to_json diags)
    else begin
      List.iter (fun d -> Printf.printf "%s\n" (Paclint.Diag.to_string d)) diags;
      Printf.printf "%s: %d diagnostics (%d errors, %d warnings/notes)\n" subject
        (List.length diags) (List.length errors)
        (List.length diags - List.length errors)
    end;
    if errors <> [] then exit 1
  in
  let doc =
    "Statically lint the kernel image (or a .kelf module with \
     $(b,--module)) with the whole-image interprocedural PAC analyzer: \
     call-graph reconstruction, per-function summaries to fixpoint, the \
     modifier-collision gadget census and the scheme's rule pack; exit \
     non-zero on error-severity findings."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ config_arg $ json_arg $ calls_arg $ gadgets_arg $ scheme_arg
      $ workers_arg $ module_arg)

let modgen_cmd =
  let dir_arg =
    let doc = "Directory to write the sample .kelf objects into." in
    Arg.(value & opt string "." & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let run config dir =
    List.iter
      (fun (base, obj) ->
        let path = Filename.concat dir (base ^ ".kelf") in
        Kelf.Object_file.write_file path obj;
        Printf.printf "wrote %s (%d functions, %d instructions)\n" path
          (List.length obj.Kelf.Object_file.functions)
          (Kelf.Object_file.text_instruction_count obj))
      (Kelf.Samples.all config)
  in
  let doc =
    "Write the sample .kelf module objects (a clean module and the \
     cross-function signing-oracle / modifier-collision fixture) for the \
     $(b,lint --module) workflow. A .kelf file is readable only by the \
     binary that wrote it."
  in
  Cmd.v (Cmd.info "modgen" ~doc) Term.(const run $ config_arg $ dir_arg)

let faults_cmd =
  let trials_arg =
    let doc = "Number of fault-injection trials to run." in
    Arg.(value & opt int 100 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit the campaign report as deterministic JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let quarantine_arg =
    let doc =
      "Offline a core after it accumulates $(docv) PAC authentication failures."
    in
    Arg.(value & opt (some int) None & info [ "quarantine" ] ~docv:"N" ~doc)
  in
  let demo_arg =
    let doc =
      "Run the per-CPU quarantine demonstration (stuck key-register fault on one \
       core) instead of a random campaign."
    in
    Arg.(value & flag & info [ "demo" ] ~doc)
  in
  let workers_arg =
    let doc =
      "Run trials on $(docv) worker domains via the fleet engine. The report \
       is byte-identical for every worker count; only wall-clock changes."
    in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc =
      "Re-attempts granted to a raising trial job before it is quarantined \
       and reported as failed."
    in
    Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N" ~doc)
  in
  let record_arg =
    let doc =
      "Write a deterministic record-replay log of the campaign into $(docv) \
       (as faults-<seed>-<trials>.replay), re-runnable bit-for-bit with \
       $(b,camouflage replay)."
    in
    Arg.(value & opt (some string) None & info [ "record-dir" ] ~docv:"DIR" ~doc)
  in
  let chrome_arg =
    let doc =
      "Run the campaign under telemetry and write the merged multi-trial \
       Chrome trace (one per-trial process lane, per-core thread tracks) to \
       $(docv). Byte-identical for every worker count."
    in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  let lanes_arg =
    let doc = "Number of trial lanes kept for the $(b,--chrome) trace." in
    Arg.(value & opt int 4 & info [ "lanes" ] ~docv:"N" ~doc)
  in
  let hist_json_arg =
    let doc =
      "Run the campaign under telemetry and write the merged span latency \
       histograms to $(docv) as byte-stable JSON. Byte-identical for every \
       worker count (the merge is an exact commutative monoid folded in \
       trial-index order)."
    in
    Arg.(value & opt (some string) None & info [ "hist-json" ] ~docv:"FILE" ~doc)
  in
  let run config seed cpus no_icache tier trials json quarantine workers
      retries record_dir chrome lanes hist_json demo =
    let tier = resolve_tier no_icache tier in
    if demo then print_string (Faultinj.Campaign.demo_to_string (Faultinj.Campaign.quarantine_demo ~seed ()))
    else begin
      (* the sequential path is just the fleet engine at --workers 1 *)
      let telemetry = chrome <> None || hist_json <> None in
      let result =
        Option.get
          (Fleet.Campaign.run ~config ~config_name:(C.Config.name config)
             ~cpus:(max cpus 2) ?quarantine_after:quarantine
             ~workers:(max 1 workers) ?retries ?record_dir ~telemetry ?tier
             ~lanes:(if chrome = None then 0 else max 0 lanes)
             ~seed ~trials ())
      in
      let report = result.Fleet.Campaign.report in
      if json then print_string (Faultinj.Campaign.report_to_json report)
      else print_string (Faultinj.Campaign.report_to_string report);
      (match (chrome, result.Fleet.Campaign.telemetry) with
      | Some path, Some tel ->
          let doc =
            Telemetry.Chrome.serialize_lanes tel.Fleet.Campaign.lanes
          in
          (match Telemetry.Chrome.validate doc with
          | Ok () -> ()
          | Error e -> failwith ("fleet trace failed validation: " ^ e));
          let oc = open_out path in
          output_string oc doc;
          close_out oc;
          Printf.eprintf "chrome trace (%d lanes) written to %s\n"
            (List.length tel.Fleet.Campaign.lanes)
            path
      | _ -> ());
      (match (hist_json, result.Fleet.Campaign.telemetry) with
      | Some path, Some tel ->
          let oc = open_out path in
          output_string oc
            (Telemetry.Span.histograms_to_json tel.Fleet.Campaign.hists);
          output_string oc "\n";
          close_out oc;
          Printf.eprintf "span histograms written to %s\n" path
      | _ -> ());
      (* side-channel notes go to stderr: stdout stays a clean report *)
      (match result.Fleet.Campaign.record_path with
      | Some path -> Printf.eprintf "replay log written to %s\n" path
      | None -> ());
      match result.Fleet.Campaign.failures with
      | [] -> ()
      | fs ->
          List.iter
            (fun f ->
              Printf.eprintf "warning: trial %d failed after %d attempts: %s\n"
                f.Fleet.Pool.job f.Fleet.Pool.attempts f.Fleet.Pool.error)
            fs
    end
  in
  let doc =
    "Run a seeded fault-injection campaign (bit flips in memory, registers, PAC \
     fields and key registers; instruction skips) and report how faults were \
     detected or survived. Fully deterministic per seed and worker count."
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      const run $ config_arg $ seed_arg $ cpus_arg $ no_icache_arg
      $ exec_tier_arg $ trials_arg $ json_arg $ quarantine_arg $ workers_arg
      $ retries_arg $ record_arg $ chrome_arg $ lanes_arg $ hist_json_arg
      $ demo_arg)

let replay_cmd =
  let log_arg =
    let doc = "Replay log written by $(b,camouflage faults --record-dir)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG" ~doc)
  in
  let trial_arg =
    let doc = "Replay only trial $(docv) instead of every recorded trial." in
    Arg.(value & opt (some int) None & info [ "trial" ] ~docv:"N" ~doc)
  in
  let run log_path trial tier =
    match Snapshot.Log.read ~path:log_path with
    | Error e ->
        Printf.eprintf "%s: %s\n" log_path e;
        exit 2
    | Ok log -> (
        match Faultinj.Replay.replay ?index:trial ?tier log with
        | Error e ->
            Printf.eprintf "replay failed: %s\n" e;
            exit 2
        | Ok verdicts ->
            List.iter
              (fun v -> print_endline (Faultinj.Replay.verdict_to_string v))
              verdicts;
            let diverged =
              List.filter (fun v -> not (Faultinj.Replay.verdict_ok v)) verdicts
            in
            Printf.printf
              "replayed %d trial(s) against golden fingerprint %s: %s\n"
              (List.length verdicts)
              log.Snapshot.Log.header.Snapshot.Log.h_golden_fingerprint
              (if diverged = [] then "all byte-identical"
               else Printf.sprintf "%d DIVERGED" (List.length diverged));
            if diverged <> [] then exit 1)
  in
  let doc =
    "Re-execute trials from a recorded fault campaign and hard-assert that \
     every replayed entry — fault spec, outcome, makespan and post-trial \
     state fingerprint — is byte-identical to the recording. Exits non-zero \
     on any divergence."
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ log_arg $ trial_arg $ exec_tier_arg)

let sweep_cmd =
  let machines_arg =
    let doc = "Number of independent machines to boot and attack." in
    Arg.(value & opt int 16 & info [ "machines" ] ~docv:"N" ~doc)
  in
  let attempts_arg =
    let doc = "PAC forgery attempts per machine." in
    Arg.(value & opt int 8 & info [ "attempts" ] ~docv:"N" ~doc)
  in
  let threshold_arg =
    let doc = "Override the brute-force panic threshold." in
    Arg.(value & opt (some int) None & info [ "threshold" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains for the fleet engine." in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit the sweep report as deterministic JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run config seed machines attempts threshold workers json =
    let report, _, failures =
      Option.get
        (Fleet.Sweep.run ~config ?threshold ~workers:(max 1 workers) ~seed
           ~machines ~attempts ())
    in
    if json then print_string (Fleet.Sweep.report_to_json report)
    else print_string (Fleet.Sweep.report_to_string report);
    List.iter
      (fun f ->
        Printf.eprintf "warning: machine %d failed after %d attempts: %s\n"
          f.Fleet.Pool.job f.Fleet.Pool.attempts f.Fleet.Pool.error)
      failures
  in
  let doc =
    "Run the PAC brute-force attack and accounting audit across a fleet of \
     independent machines (work-stealing domains, index-merged byte-stable \
     report)."
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ config_arg $ seed_arg $ machines_arg $ attempts_arg
      $ threshold_arg $ workers_arg $ json_arg)

let serve_cmd =
  let run () = Fleet.Serve.loop (Fleet.Serve.create ()) in
  let doc =
    "Serve the campaign control plane: one JSON request per line on stdin \
     (ping, submit, status, report, cancel, shutdown), one JSON response per \
     line on stdout. Campaigns run asynchronously on fleet worker domains."
  in
  Cmd.v (Cmd.info "serve" ~doc) Term.(const run $ const ())

let main =
  let doc = "Camouflage: hardware-assisted CFI for an ARM-like kernel (DAC'20 reproduction)" in
  Cmd.group (Cmd.info "camouflage" ~version:"1.0.0" ~doc)
    [
      boot_cmd; attack_cmd; census_cmd; disasm_cmd; integrity_cmd; trace_cmd;
      stats_cmd; lint_cmd; modgen_cmd; faults_cmd; replay_cmd; sweep_cmd;
      serve_cmd;
    ]

let () = exit (Cmd.eval main)
