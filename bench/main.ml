(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (E1-E9 of DESIGN.md) plus the ablations (A1-A4), and can
   additionally run Bechamel wall-time measurements of the simulator
   itself.

   Usage:
     main.exe            run every experiment
     main.exe e2 e3      run selected experiments
     main.exe e9         SMP syscall-throughput scaling (simulated cores)
     main.exe parallel   Domain-parallel wall-clock scaling
     main.exe bechamel   run the Bechamel wall-time suite

   Any invocation additionally accepts [--json FILE] (alias
   [--metrics-json FILE]): every deterministic number the selected
   experiments print is also written to FILE as an array of
   {"experiment", "metric", "value", "unit"} rows. *)

open Aarch64
module C = Camouflage
module K = Kernel

let header title =
  Printf.printf "\n=== %s ===\n" title

let row fmt = Printf.printf fmt

(* --- machine-readable metrics (--json): every deterministic number a
   table prints is also collected as an {experiment, metric, value,
   unit} row, so CI can archive and diff runs. Wall-clock numbers are
   deliberately excluded — only simulated, seeded quantities. *)

let metrics : (string * string * float * string) list ref = ref []

let metric ~experiment ~name ~value ~unit_ =
  metrics := (experiment, name, value, unit_) :: !metrics

(* "Camouflage (32b SP + 32b fn addr)" -> "camouflage-32b-sp-32b-fn-addr" *)
let slug s =
  let b = Buffer.create (String.length s) in
  let pending = ref false in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c ->
          if !pending && Buffer.length b > 0 then Buffer.add_char b '-';
          pending := false;
          Buffer.add_char b c
      | _ -> pending := true)
    s;
  Buffer.contents b

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.10g" v

let write_metrics path =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i (experiment, name, value, unit_) ->
      let b = Buffer.create 96 in
      Buffer.add_string b "  {\"experiment\": \"";
      json_escape b experiment;
      Buffer.add_string b "\", \"metric\": \"";
      json_escape b name;
      Buffer.add_string b "\", \"value\": ";
      Buffer.add_string b (json_number value);
      Buffer.add_string b ", \"unit\": \"";
      json_escape b unit_;
      Buffer.add_string b "\"}";
      if i > 0 then output_string oc ",\n";
      output_string oc (Buffer.contents b))
    (List.rev !metrics);
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "\nwrote %d metric rows to %s\n" (List.length !metrics) path

(* Horizontal bar for the figure renderings: one '#' per [unit]. *)
let bar ?(width = 44) ~max_value value =
  let n =
    if max_value <= 0.0 then 0
    else int_of_float (Float.round (value /. max_value *. float_of_int width))
  in
  String.make (max 0 (min width n)) '#'

(* E1: key-switch cost (Section 6.1.1: about 9 cycles per key). *)
let e1 () =
  header "E1  Key management: cycles per 128-bit key switch (paper: ~9 cycles/key)";
  let runs = 20 in
  let sys = K.System.boot ~config:C.Config.full ~seed:5L () in
  let cpu = K.System.cpu sys in
  let keys = List.length (C.Keys.keys_in_use C.Config.full.C.Config.mode) in
  let samples =
    List.init runs (fun _ ->
        let before = Cpu.cycles cpu in
        K.System.install_kernel_keys sys;
        Int64.to_float (Int64.sub (Cpu.cycles cpu) before) /. float_of_int keys)
  in
  let mean = Camo_util.Stats.mean samples and std = Camo_util.Stats.stddev samples in
  row "kernel key install (XOM setter): %.2f cycles/key (std %.3f, n=%d, %d keys)\n" mean
    std runs keys;
  let rsamples =
    List.init runs (fun _ ->
        let before = Cpu.cycles cpu in
        K.System.restore_user_keys sys;
        Int64.to_float (Int64.sub (Cpu.cycles cpu) before) /. 5.0)
  in
  row "user key restore (from thread_struct): %.2f cycles/key (std %.3f, 5 keys)\n"
    (Camo_util.Stats.mean rsamples)
    (Camo_util.Stats.stddev rsamples);
  row "paper reports 9 cycles/key (avg 8.88, variance .004) on the PA-analogue A53\n";
  metric ~experiment:"e1" ~name:"kernel-key-install" ~value:mean
    ~unit_:"cycles/key";
  metric ~experiment:"e1" ~name:"user-key-restore"
    ~value:(Camo_util.Stats.mean rsamples)
    ~unit_:"cycles/key"

(* E2: Figure 2 — function call overhead. *)
let e2 () =
  header "E2  Figure 2: function-call overhead per backward-edge scheme";
  let results = Workloads.Calls.measure ~calls:10_000 () in
  row "%-36s %14s %12s %14s\n" "scheme" "cycles/call" "ns/call" "overhead(ns)";
  let clock = Cost.cortex_a53.Cost.clock_hz in
  let max_ns =
    List.fold_left (fun acc m -> max acc m.Workloads.Calls.ns_per_call) 0.0 results
  in
  List.iter
    (fun m ->
      row "%-36s %14.2f %12.2f %14.2f  %s\n" m.Workloads.Calls.scheme_label
        m.Workloads.Calls.cycles_per_call m.Workloads.Calls.ns_per_call
        (m.Workloads.Calls.overhead_cycles /. clock *. 1e9)
        (bar ~width:30 ~max_value:max_ns m.Workloads.Calls.ns_per_call);
      metric ~experiment:"e2"
        ~name:(slug m.Workloads.Calls.scheme_label ^ "-cycles-per-call")
        ~value:m.Workloads.Calls.cycles_per_call ~unit_:"cycles";
      metric ~experiment:"e2"
        ~name:(slug m.Workloads.Calls.scheme_label ^ "-overhead")
        ~value:m.Workloads.Calls.overhead_cycles ~unit_:"cycles")
    results;
  row "expected shape: baseline < SP-only (Clang) < Camouflage < PARTS\n";

  (* Attribution (PR 4): where do the added cycles land? The telemetry
     profiler buckets every retired cycle of the same probe by
     instrumentation origin. *)
  row "\ncycle attribution (telemetry profiler, per-call figures):\n";
  let attrs = Workloads.Calls.attribute ~calls:10_000 () in
  row "%-36s %12s %10s" "scheme" "cycles/call" "added";
  List.iter
    (fun o -> row " %13s" (Telemetry.Profile.origin_name o))
    Telemetry.Profile.all_origins;
  row " %10s\n" "attributed";
  List.iter
    (fun a ->
      row "%-36s %12.2f %10.2f" a.Workloads.Calls.attr_label
        a.Workloads.Calls.attr_cycles_per_call
        a.Workloads.Calls.attr_added_per_call;
      List.iter
        (fun o ->
          let c =
            match List.assoc_opt o a.Workloads.Calls.attr_by_origin with
            | Some c -> c
            | None -> 0L
          in
          row " %13.2f" (Int64.to_float c /. 10_000.))
        Telemetry.Profile.all_origins;
      row " %9.1f%%\n" (100. *. a.Workloads.Calls.attr_fraction);
      metric ~experiment:"e2"
        ~name:(slug a.Workloads.Calls.attr_label ^ "-attributed-fraction")
        ~value:a.Workloads.Calls.attr_fraction ~unit_:"ratio")
    attrs;
  row "every added cycle should carry a named origin (sign/auth/modifier/key)\n";

  (* Span latency (PR 9): the same schemes measured end-to-end instead
     of per-call — syscall and context-switch latency distributions
     from the telemetry span histograms of an SMP syscall workload.
     Percentiles are HDR bucket lower bounds (exact to 1/32). *)
  row "\nspan latency per scheme (8-task SMP syscall workload, 2 cores; cycles):\n";
  row "%-16s %10s %8s %8s %12s %8s %8s\n" "scheme" "syscalls" "p50" "p99"
    "ctx-switch" "p50" "p99";
  List.iter
    (fun (name, config) ->
      let sys = K.System.boot ~config ~seed:11L ~cpus:2 ~telemetry:true () in
      let layout =
        K.System.map_user_program sys
          (Workloads.Smp.throughput_program ~rounds:20)
      in
      let entry = Asm.symbol layout "throughput" in
      let tasks = List.init 8 (fun _ -> K.System.spawn_user_task sys ~entry) in
      let (_ : K.System.smp_stats) = K.System.run_smp ~quantum:500 sys ~tasks in
      let hub =
        match K.System.telemetry sys with
        | Some h -> h
        | None -> failwith "telemetry boot carries no hub"
      in
      let hists = Telemetry.Hub.histograms hub in
      let h kind =
        match List.assoc_opt kind hists with
        | Some h -> h
        | None -> Telemetry.Hist.create ()
      in
      let sy = h Telemetry.Span.Syscall in
      let cs = h Telemetry.Span.Context_switch in
      row "%-16s %10Ld %8Ld %8Ld %12Ld %8Ld %8Ld\n" name
        (Telemetry.Hist.count sy) (Telemetry.Hist.p50 sy)
        (Telemetry.Hist.p99 sy) (Telemetry.Hist.count cs)
        (Telemetry.Hist.p50 cs) (Telemetry.Hist.p99 cs);
      List.iter
        (fun (metric_name, v) ->
          metric ~experiment:"e2"
            ~name:(slug name ^ "-" ^ metric_name)
            ~value:(Int64.to_float v) ~unit_:"cycles")
        [
          ("syscall-p50", Telemetry.Hist.p50 sy);
          ("syscall-p99", Telemetry.Hist.p99 sy);
          ("context-switch-p50", Telemetry.Hist.p50 cs);
          ("context-switch-p99", Telemetry.Hist.p99 cs);
        ])
    Workloads.Lmbench.configs;
  row "the per-scheme ordering must match the per-call table above\n"

(* E3: Figure 3 — lmbench relative latencies. *)
let e3 () =
  header "E3  Figure 3: lmbench-style syscall latencies (relative to no protection)";
  let results = Workloads.Lmbench.run () in
  let config_names = List.map fst Workloads.Lmbench.configs in
  row "%-20s" "probe";
  List.iter (fun n -> row " %14s" (n ^ " cyc")) config_names;
  List.iter (fun n -> row " %10s" (n ^ " rel")) config_names;
  row "\n";
  let max_rel =
    List.fold_left (fun acc r -> max acc r.Workloads.Lmbench.relative.(0)) 1.0 results
  in
  List.iter
    (fun r ->
      row "%-20s" r.Workloads.Lmbench.name;
      Array.iter (fun c -> row " %14.1f" c) r.Workloads.Lmbench.cycles;
      Array.iter (fun x -> row " %10.3f" x) r.Workloads.Lmbench.relative;
      row "  %s" (bar ~width:24 ~max_value:max_rel r.Workloads.Lmbench.relative.(0));
      row "\n";
      List.iteri
        (fun idx cfg ->
          metric ~experiment:"e3"
            ~name:(slug r.Workloads.Lmbench.name ^ "-" ^ slug cfg ^ "-relative")
            ~value:r.Workloads.Lmbench.relative.(idx)
            ~unit_:"ratio")
        config_names)
    results;
  List.iteri
    (fun idx cfg ->
      metric ~experiment:"e3"
        ~name:("geomean-" ^ slug cfg)
        ~value:(Workloads.Lmbench.geometric_mean_overhead results ~config_index:idx)
        ~unit_:"ratio")
    config_names;
  row "%-20s" "geometric mean";
  row " %14s %14s %14s" "" "" "";
  List.iteri
    (fun idx _ ->
      row " %10.3f" (Workloads.Lmbench.geometric_mean_overhead results ~config_index:idx))
    config_names;
  row "\n";
  row "paper: double-digit percentual overhead at syscall level for full protection\n"

(* E4: Figure 4 — user-space workloads. *)
let e4 () =
  header "E4  Figure 4: user-space workloads (relative to no protection)";
  let results = Workloads.Userspace.run () in
  let config_names = List.map fst Workloads.Lmbench.configs in
  row "%-30s" "workload";
  List.iter (fun n -> row " %10s" (n ^ " rel")) config_names;
  row "\n";
  let max_rel =
    List.fold_left (fun acc r -> max acc r.Workloads.Userspace.relative.(0)) 1.0 results
  in
  List.iter
    (fun r ->
      row "%-30s" r.Workloads.Userspace.name;
      Array.iter (fun x -> row " %10.4f" x) r.Workloads.Userspace.relative;
      row "  %s" (bar ~width:24 ~max_value:max_rel r.Workloads.Userspace.relative.(0));
      row "\n";
      List.iteri
        (fun idx cfg ->
          metric ~experiment:"e4"
            ~name:(slug r.Workloads.Userspace.name ^ "-" ^ slug cfg ^ "-relative")
            ~value:r.Workloads.Userspace.relative.(idx)
            ~unit_:"ratio")
        config_names)
    results;
  row "%-30s" "geometric mean";
  List.iteri
    (fun idx _ ->
      row " %10.4f" (Workloads.Userspace.geometric_mean_overhead results ~config_index:idx))
    config_names;
  row "\n";
  let full_geo = Workloads.Userspace.geometric_mean_overhead results ~config_index:0 in
  row "paper: geometric-mean overhead below 4%%; measured: %.2f%%\n"
    ((full_geo -. 1.0) *. 100.0);
  List.iteri
    (fun idx cfg ->
      metric ~experiment:"e4"
        ~name:("geomean-" ^ slug cfg)
        ~value:(Workloads.Userspace.geometric_mean_overhead results ~config_index:idx)
        ~unit_:"ratio")
    config_names

(* E5: the Coccinelle census of Section 5.3. *)
let e5 () =
  header "E5  Semantic search census (Section 5.3, Linux 5.2 shape)";
  let corpus = Sempatch.Corpus.generate ~seed:2026L () in
  let census = Sempatch.Analysis.run corpus in
  row "run-time-assigned function-pointer members: %4d   (paper: 1285)\n"
    census.Sempatch.Analysis.member_count;
  row "containing compound types:                   %4d   (paper:  504)\n"
    census.Sempatch.Analysis.type_count;
  row "types with more than one pointer:            %4d   (paper:  229)\n"
    census.Sempatch.Analysis.multi_member_type_count;
  row "-> convertible to read-only ops structures:  %4d\n"
    census.Sempatch.Analysis.ops_table_convertible;
  row "-> lone pointers needing PAuth protection:   %4d\n"
    census.Sempatch.Analysis.needs_pac;
  let protected = Sempatch.Analysis.protected_members census in
  let rewritten, stats = Sempatch.Rewrite.apply corpus ~protected in
  row "semantic patch: %d writes and %d reads rewritten across %d functions\n"
    stats.Sempatch.Rewrite.writes_rewritten stats.Sempatch.Rewrite.reads_rewritten
    stats.Sempatch.Rewrite.functions_touched;
  row "residual direct accesses after patch: %d (must be 0)\n"
    (Sempatch.Rewrite.residual_accesses rewritten ~protected);
  (* the second half of Section 5.3: convert multi-pointer types to
     read-only operations structures *)
  let converted, conv = Sempatch.Convert.convert_multi corpus census in
  let census' = Sempatch.Analysis.run converted in
  row "ops conversion: %d types -> const ops structs, %d writes collapsed\n"
    conv.Sempatch.Convert.types_converted conv.Sempatch.Convert.assignments_collapsed;
  row "census after conversion: %d members, %d multi types (expected 275 / 0)\n"
    census'.Sempatch.Analysis.member_count census'.Sempatch.Analysis.multi_member_type_count;
  List.iter
    (fun (name, v) ->
      metric ~experiment:"e5" ~name ~value:(float_of_int v) ~unit_:"count")
    [
      ("fp-members", census.Sempatch.Analysis.member_count);
      ("compound-types", census.Sempatch.Analysis.type_count);
      ("multi-member-types", census.Sempatch.Analysis.multi_member_type_count);
      ("ops-convertible", census.Sempatch.Analysis.ops_table_convertible);
      ("needs-pac", census.Sempatch.Analysis.needs_pac);
      ("writes-rewritten", stats.Sempatch.Rewrite.writes_rewritten);
      ("reads-rewritten", stats.Sempatch.Rewrite.reads_rewritten);
      ("residual-accesses", Sempatch.Rewrite.residual_accesses rewritten ~protected);
      ("members-after-conversion", census'.Sempatch.Analysis.member_count);
    ]

(* E6: Appendix A — address layout and PAC widths. *)
let e6 () =
  header "E6  Tables 1-2: VMSAv8 pointer layout and PAC widths";
  row "%-34s %8s %5s %9s\n" "configuration" "va_bits" "TBI" "PAC bits";
  let show label cfg =
    row "%-34s %8d %5s %9d\n" label cfg.Vaddr.va_bits
      (if cfg.Vaddr.tbi then "yes" else "no")
      (Vaddr.pac_bits cfg);
    metric ~experiment:"e6"
      ~name:(slug label ^ "-pac-bits")
      ~value:(float_of_int (Vaddr.pac_bits cfg))
      ~unit_:"bits"
  in
  show "kernel, 48-bit VA (paper's config)" Vaddr.linux_kernel;
  show "user, 48-bit VA + tag byte" Vaddr.linux_user;
  show "kernel, 39-bit VA" { Vaddr.va_bits = 39; tbi = false };
  show "user, 39-bit VA + tag byte" { Vaddr.va_bits = 39; tbi = true };
  row "address-range select (Table 1): bit 55; examples:\n";
  List.iter
    (fun (a, expect) ->
      let got =
        match Vaddr.select a with
        | Vaddr.Kernel -> "kernel"
        | Vaddr.User -> "user"
        | Vaddr.Invalid -> "invalid"
      in
      row "  0x%016Lx -> %-7s (expected %s)\n" a got expect)
    [
      (0xffffffffffffffffL, "kernel");
      (0xffff000000000000L, "kernel");
      (0x0000ffffffffffffL, "user");
      (0x0000000000000000L, "user");
    ]

(* E7: PAC guessing probability (Section 6.2.1: 2^-pac_size). *)
let e7 () =
  header "E7  PAC forgery probability (paper: 2^-pac_size; 15 kernel PAC bits)";
  let cfg = Vaddr.linux_kernel in
  let cipher = Qarma.Block.create () in
  let key = Pac.{ hi = 0x1122334455667788L; lo = 0x99aabbccddeeff00L } in
  let rng = Camo_util.Rng.create 77L in
  let samples = 1 lsl 19 in
  let hits = ref 0 in
  for _ = 1 to samples do
    let ptr =
      Int64.logor 0xffff000000000000L
        (Int64.logand (Camo_util.Rng.next rng) 0xffffffffffL)
    in
    let modifier = Camo_util.Rng.next rng in
    let signed = Pac.compute ~cipher ~key ~cfg ~modifier ptr in
    let guess =
      Vaddr.insert_pac cfg
        ~pac:(Int64.logand (Camo_util.Rng.next rng) (Camo_util.Val64.mask 15))
        signed
    in
    if guess = signed then incr hits
  done;
  let p = float_of_int !hits /. float_of_int samples in
  row "random forgeries accepted: %d / %d  (p = %.3e; 2^-15 = %.3e)\n" !hits samples p
    (1.0 /. 32768.0);
  metric ~experiment:"e7" ~name:"forgery-acceptance" ~value:p ~unit_:"probability";
  metric ~experiment:"e7" ~name:"forgery-hits" ~value:(float_of_int !hits)
    ~unit_:"count";
  (* the machine-level mitigation demo *)
  let config = { C.Config.full with bruteforce_threshold = 8 } in
  let sys = K.System.boot ~config ~seed:13L () in
  let report = Attacks.Bruteforce_attack.run sys ~attempts:64 ~seed:21L in
  row "machine demo with threshold 8: %s\n"
    (Attacks.Bruteforce_attack.report_to_string report)

(* Oracle sweep: Section 6.2.3's requirement that no kernel path can be
   used as a silent PAC-verification oracle. *)
let oracle () =
  header "ORACLE  Section 6.2.3: verification-oracle sweep over every protected surface";
  let verdicts = Attacks.Oracle.sweep () in
  List.iter (fun v -> row "%s\n" (Attacks.Oracle.verdict_to_string v)) verdicts;
  row "%s\n"
    (if Attacks.Oracle.all_closed verdicts then
       "all surfaces fail closed: killed and logged, no silent oracle"
     else "ORACLE FOUND - a surface fails open")

(* A1: replay-attack surface per modifier scheme. *)
let a1 () =
  header "A1  Ablation: modifier entropy vs replay (Sections 4.2, 7)";
  let samples = 200_000 in
  row "%-38s %22s\n" "scheme" "context-collision rate";
  List.iter
    (fun scheme ->
      let f = Attacks.Replay.collision_fraction scheme ~samples ~seed:3L in
      row "%-38s %22.6e\n" (C.Modifier.scheme_name scheme) f)
    [ C.Modifier.Sp_only; C.Modifier.Parts 0x1234L; C.Modifier.Camouflage ];
  row "machine demo: replay of a harvested return address across task stacks 64 KiB apart\n";
  List.iter
    (fun (label, config) ->
      let sys = K.System.boot ~config ~seed:17L () in
      let outcome = Attacks.Replay.cross_task_switch_frame sys in
      row "  %-36s -> %s\n" label (Attacks.Replay.outcome_to_string outcome))
    [
      ("PARTS (16-bit SP)", { C.Config.full with scheme = C.Modifier.Parts 0x77L });
      ("SP-only (full SP)", { C.Config.full with scheme = C.Modifier.Sp_only });
      ("Camouflage", C.Config.full);
    ]

(* A2: XOM key setter vs EL2-trap key management (Ferri et al.). *)
let a2 () =
  header "A2  Ablation: XOM key setter vs EL2-trap key management (Section 7)";
  let sys = K.System.boot ~config:C.Config.full ~seed:5L () in
  let cpu = K.System.cpu sys in
  let before = Cpu.cycles cpu in
  K.System.install_kernel_keys sys;
  let xom_cycles = Int64.to_int (Int64.sub (Cpu.cycles cpu) before) in
  let profile = Cpu.cost_profile cpu in
  (* trapping to EL2 costs one exception entry + return around the same
     register writes, per key-set event *)
  let trap_cycles =
    xom_cycles + profile.Cost.exception_entry + profile.Cost.eret
  in
  row "XOM setter (this work):        %4d cycles per kernel entry\n" xom_cycles;
  row "EL2 trap (Ferri et al. style): %4d cycles per kernel entry (+%d%%)\n" trap_cycles
    ((trap_cycles - xom_cycles) * 100 / max 1 xom_cycles);
  row "the trap also exposes key material to EL2 scheduling latency; XOM does not trap\n"

(* A3: signed-vtable-entries (Apple) vs read-only ops tables. *)
let a3 () =
  header "A3  Ablation: sign-all-vtable-entries (Apple) vs const ops tables (Section 7)";
  let profile = Cost.cortex_a53 in
  let n_ops = 4 in
  let camouflage_create = 2 * profile.Cost.pauth in
  (* sign f_ops + f_cred *)
  let camouflage_call = profile.Cost.pauth in
  (* authenticate f_ops *)
  let apple_create = n_ops * profile.Cost.pauth in
  (* sign each table entry *)
  let apple_call = profile.Cost.pauth in
  (* authenticate the loaded entry *)
  row "%-28s %16s %14s %26s\n" "design" "create (cycles)" "call (cycles)"
    "cross-object replay";
  row "%-28s %16d %14d %26s\n" "Camouflage (const tables)" camouflage_create
    camouflage_call "rejected (addr-bound)";
  row "%-28s %16d %14d %26s\n" "Apple (zero modifier)" apple_create apple_call
    "accepted (modifier = 0)";
  (* demonstrate the zero-modifier replay acceptance with the real PAC *)
  let cipher = Qarma.Block.create () in
  let key = Pac.{ hi = 1L; lo = 2L } in
  let cfg = Vaddr.linux_kernel in
  let fn = 0xffff000000123450L in
  let signed_zero_mod = Pac.compute ~cipher ~key ~cfg ~modifier:0L fn in
  let replay_elsewhere = Pac.auth ~cipher ~key ~cfg ~modifier:0L signed_zero_mod in
  row "zero-modifier PAC replayed at another object: %s\n"
    (match replay_elsewhere with Result.Ok _ -> "ACCEPTED" | Result.Error _ -> "rejected")

(* A4: brute-force threshold sweep. *)
let a4 () =
  header "A4  Ablation: PAC-failure threshold vs expected forgery work (Section 5.4)";
  let pac_bits = Vaddr.pac_bits Vaddr.linux_kernel in
  let space = float_of_int (1 lsl pac_bits) in
  row "%-10s %26s %24s\n" "threshold" "P(success before panic)" "expected attempts/panic";
  List.iter
    (fun threshold ->
      let p = 1.0 -. ((1.0 -. (1.0 /. space)) ** float_of_int threshold) in
      row "%-10d %26.3e %24d\n" threshold p threshold)
    [ 1; 4; 16; 64; 256; 1024 ];
  row "without the mitigation the search needs ~%d attempts on average\n"
    (1 lsl (pac_bits - 1));
  (* machine confirmation for threshold=4 *)
  let config = { C.Config.full with bruteforce_threshold = 4 } in
  let sys = K.System.boot ~config ~seed:23L () in
  let report = Attacks.Bruteforce_attack.run sys ~attempts:32 ~seed:29L in
  row "machine run (threshold 4): %s\n" (Attacks.Bruteforce_attack.report_to_string report)

(* A5: the chained (PACStack-style) authenticated call stack. *)
let a5 () =
  header "A5  Ablation: chained authenticated call stack vs static modifiers";
  let calls = 5_000 in
  row "%-44s %14s %20s\n" "scheme" "cycles/call" "temporal replay";
  let schemes =
    [
      C.Modifier.No_cfi;
      C.Modifier.Sp_only;
      C.Modifier.Camouflage;
      C.Modifier.Chained;
    ]
  in
  List.iter
    (fun scheme ->
      let config = { C.Config.backward_only with scheme } in
      let cycles =
        Int64.to_float (Workloads.Calls.measure_bare config ~calls) /. float_of_int calls
      in
      let replay =
        match scheme with
        | C.Modifier.No_cfi -> "n/a (no PAC)"
        | C.Modifier.Sp_only | C.Modifier.Parts _ | C.Modifier.Camouflage
        | C.Modifier.Chained -> (
            match Attacks.Temporal_replay.run scheme with
            | Attacks.Temporal_replay.Replay_accepted -> "ACCEPTED"
            | Attacks.Temporal_replay.Replay_rejected -> "rejected"
            | Attacks.Temporal_replay.Inconclusive m -> "? " ^ m)
      in
      row "%-44s %14.2f %20s\n" (C.Modifier.scheme_name scheme) cycles replay)
    schemes;
  row "the chain closes the same-context replay window Section 6.2.1 leaves open,\n";
  row "at extra spill cost per call and at the price of kernel-integration limits\n"

(* A6: sensitivity of the headline results to the PAuth latency
   estimate. The paper's PA-analogue assumes 4 cycles per PAuth
   instruction; real implementations may differ, so sweep it. *)
let a6 () =
  header "A6  Ablation: sensitivity to the PAuth-latency estimate (PA-analogue = 4)";
  let calls = 2_000 in
  row "%-14s %24s %24s %18s\n" "pauth cycles" "camouflage call (cyc)" "call overhead vs none"
    "null syscall rel";
  List.iter
    (fun latency ->
      let cost = { Cost.cortex_a53 with Cost.pauth = latency } in
      let per_call config =
        Int64.to_float (Workloads.Calls.measure_bare ~cost config ~calls)
        /. float_of_int calls
      in
      let camo = per_call C.Config.backward_only in
      let base = per_call C.Config.none in
      let null_latency config =
        let sys = K.System.boot ~config ~seed:11L ~cost () in
        (* warm up, then measure one representative entry *)
        (match K.System.syscall sys ~nr:K.Kbuild.sys_getpid ~args:[] with
        | K.System.Ok _ -> ()
        | K.System.Killed m | K.System.Panicked m -> failwith m);
        let before = Cpu.cycles (K.System.cpu sys) in
        (match K.System.syscall sys ~nr:K.Kbuild.sys_getpid ~args:[] with
        | K.System.Ok _ -> ()
        | K.System.Killed m | K.System.Panicked m -> failwith m);
        Int64.to_float (Int64.sub (Cpu.cycles (K.System.cpu sys)) before)
      in
      let rel = null_latency C.Config.full /. null_latency C.Config.none in
      row "%-14d %24.2f %24.2f %18.3f\n" latency camo (camo -. base) rel)
    [ 2; 4; 6; 8 ];
  row "overheads scale close to linearly in the PAuth latency; the orderings\n";
  row "of Figures 2-4 are unchanged across the plausible range\n"

(* E8 lives in the test suite (exact listing shapes); print a pointer. *)
let e8 () =
  header "E8  Listing shapes";
  row "asserted byte-for-byte in test/test_camouflage.ml (dune runtest)\n";
  let layout =
    let f = C.Instrument.wrap C.Config.full ~name:"function" [] in
    let prog = Asm.create () in
    Asm.add_function prog ~name:"function" f.C.Instrument.items;
    Asm.assemble prog ~base:0xffff000000100000L
  in
  print_string (Asm.disassemble layout);
  metric ~experiment:"e8" ~name:"instrumented-empty-fn-bytes"
    ~value:(float_of_int layout.Asm.size)
    ~unit_:"bytes"

(* E9: syscall throughput scaling across simulated SMP cores. *)
let e9 () =
  header "E9  SMP syscall throughput scaling (simulated parallel time)";
  let tasks = 8 and rounds = 40 in
  let points = Workloads.Smp.run_scaling ~seed:42L ~tasks ~rounds () in
  row "%d tasks x %d syscall rounds each, full protection\n\n" tasks rounds;
  row "%-6s %14s %14s %12s %9s %6s %6s  %s\n" "cpus" "makespan" "aggregate"
    "sys/kcycle" "speedup" "migr" "ipis" "";
  let max_speedup =
    List.fold_left (fun acc p -> Float.max acc p.Workloads.Smp.speedup) 1.0 points
  in
  List.iter
    (fun p ->
      let open Workloads.Smp in
      row "%-6d %14Ld %14Ld %12.2f %8.2fx %6d %6d  %s%s\n" p.cpus p.makespan
        p.aggregate p.throughput p.speedup p.migrations p.ipis
        (bar ~max_value:max_speedup p.speedup)
        (if p.all_exited then "" else "  [INCOMPLETE]");
      let pfx = Printf.sprintf "%d-cpus-" p.cpus in
      metric ~experiment:"e9" ~name:(pfx ^ "makespan")
        ~value:(Int64.to_float p.makespan) ~unit_:"cycles";
      metric ~experiment:"e9" ~name:(pfx ^ "throughput") ~value:p.throughput
        ~unit_:"syscalls/kcycle";
      metric ~experiment:"e9" ~name:(pfx ^ "speedup") ~value:p.speedup
        ~unit_:"ratio";
      metric ~experiment:"e9" ~name:(pfx ^ "migrations")
        ~value:(float_of_int p.migrations) ~unit_:"count";
      metric ~experiment:"e9" ~name:(pfx ^ "ipis") ~value:(float_of_int p.ipis)
        ~unit_:"count")
    points;
  row "\nmakespan is the busiest core's cycle counter. Scaling is near-linear\n";
  row "because syscalls serialize only per core — every kernel entry pays its\n";
  row "own core's XOM key install (per-CPU key registers); residual skew is\n";
  row "the boot and bring-up work carried by individual cores.\n"

(* E10: fault-injection campaign — detection-rate table, the run-time
   cost of an armed injector, and the per-CPU quarantine demo. *)
let e10 () =
  header "E10 Fault-injection: detection rate and graceful degradation";
  let seed = 42L and trials = 100 in
  (* trials run on the fleet engine; the merged report is byte-identical
     to the sequential (--workers 1) rendering for any worker count *)
  let workers = min 4 (Domain.recommended_domain_count ()) in
  let result = Option.get (Fleet.Campaign.run ~workers ~seed ~trials ()) in
  let report = result.Fleet.Campaign.report in
  row "(%d trials on %d fleet worker domains)\n" trials workers;
  print_string (Faultinj.Campaign.report_to_string report);
  List.iter
    (fun (name, v) ->
      metric ~experiment:"e10" ~name ~value:(float_of_int v) ~unit_:"count")
    [
      ("fired", report.Faultinj.Campaign.fired_count);
      ("detected-by-pac", report.Faultinj.Campaign.n_detected_by_pac);
      ("detected-by-mmu", report.Faultinj.Campaign.n_detected_by_mmu);
      ("panicked", report.Faultinj.Campaign.n_panicked);
      ("task-killed", report.Faultinj.Campaign.n_task_killed);
      ("silent-corruption", report.Faultinj.Campaign.n_silent);
      ("benign", report.Faultinj.Campaign.n_benign);
    ];
  metric ~experiment:"e10" ~name:"detection-rate"
    ~value:report.Faultinj.Campaign.detection_rate ~unit_:"ratio";

  (* Hook overhead: the same workload with an armed injector whose
     trigger never fires must retire the identical simulated schedule;
     the wall-clock ratio is the price of evaluating the hook. *)
  let never =
    {
      Faultinj.Injector.trigger = Faultinj.Injector.After_steps max_int;
      model = Faultinj.Injector.Skip_insn;
      persistence = Faultinj.Injector.Transient;
    }
  in
  let timed armed =
    let sys = K.System.boot ~config:C.Config.full ~seed ~cpus:2 () in
    let layout =
      K.System.map_user_program sys (Faultinj.Campaign.workload_program ~rounds:40)
    in
    let entry = Asm.symbol layout "main" in
    let tasks = List.init 8 (fun _ -> K.System.spawn_user_task sys ~entry) in
    if armed then
      Faultinj.Injector.arm_all (Faultinj.Injector.create never) (K.System.machine sys);
    let t0 = Unix.gettimeofday () in
    let stats = K.System.run_smp ~quantum:400 sys ~tasks in
    (stats.K.System.makespan, Unix.gettimeofday () -. t0)
  in
  ignore (timed false) (* warm up *);
  let plain_span, plain_wall = timed false in
  let armed_span, armed_wall = timed true in
  row "\nhook overhead (armed, never-firing injector; 8 tasks x 40 rounds):\n";
  row "  simulated makespan: %Ld cycles unarmed, %Ld armed%s\n" plain_span armed_span
    (if plain_span = armed_span then "  [identical]" else "  [DIVERGED!]");
  row "  wall clock: %.3f ms unarmed, %.3f ms armed (%.2fx)\n" (plain_wall *. 1e3)
    (armed_wall *. 1e3)
    (if plain_wall > 0.0 then armed_wall /. plain_wall else 0.0);

  (* Fork-vs-boot: the same trial indices, once via a snapshot session
     (boot once, restore per trial) and once via boot-per-trial. The
     trial records are bit-identical (the fleet test pins this); only
     the wall clock is allowed to differ. *)
  let fork_trials = 16 in
  let golden = Faultinj.Campaign.golden_run ~seed () in
  let t0 = Unix.gettimeofday () in
  for index = 0 to fork_trials - 1 do
    ignore (Faultinj.Campaign.run_random_trial ~golden ~seed ~index ())
  done;
  let boot_wall = Unix.gettimeofday () -. t0 in
  let ses = Faultinj.Campaign.create_session ~seed () in
  let t0 = Unix.gettimeofday () in
  for index = 0 to fork_trials - 1 do
    ignore (Faultinj.Campaign.run_random_trial_in ses ~index ())
  done;
  let fork_wall = Unix.gettimeofday () -. t0 in
  let fork_speedup = if fork_wall > 0.0 then boot_wall /. fork_wall else 0.0 in
  row "\nboot-once-fork-N vs boot-per-trial (%d trials):\n" fork_trials;
  row "  boot-per-trial: %.1f ms   snapshot-forked: %.1f ms   speedup %.2fx\n"
    (boot_wall *. 1e3) (fork_wall *. 1e3) fork_speedup;
  metric ~experiment:"e10" ~name:"fork-speedup" ~value:fork_speedup
    ~unit_:"ratio";
  metric ~experiment:"e10" ~name:"fork-trials-per-sec"
    ~value:(if fork_wall > 0.0 then float_of_int fork_trials /. fork_wall else 0.0)
    ~unit_:"trials/s";

  row "\n";
  print_string (Faultinj.Campaign.demo_to_string (Faultinj.Campaign.quarantine_demo ~seed ()));
  row "\nthe baseline run crosses the brute-force threshold and halts; with\n";
  row "quarantine the kernel offlines the faulty core, migrates its queue and\n";
  row "keeps serving the surviving tasks on the healthy core.\n"

(* SNAPSHOT: the copy-on-write capture/restore primitive behind fleet
   sessions and record-replay. Three numbers: the cost of capturing a
   booted machine, the clean-restore rate (nothing dirtied — the CoW
   fast path), and the dirty-restore rate after a full workload run
   (every touched frame blitted back). *)
let snapshot_bench () =
  header "SNAPSHOT copy-on-write capture and restore throughput";
  let seed = 42L in
  let boot () =
    let sys = K.System.boot ~config:C.Config.full ~seed ~cpus:2 () in
    let layout =
      K.System.map_user_program sys (Faultinj.Campaign.workload_program ~rounds:8)
    in
    let entry = Asm.symbol layout "main" in
    let tasks = List.init 4 (fun _ -> K.System.spawn_user_task sys ~entry) in
    (sys, tasks)
  in
  let sys, tasks = boot () in
  let mem = Machine.mem (K.System.machine sys) in
  let t0 = Unix.gettimeofday () in
  let snap = K.System.snapshot sys in
  let capture_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  row "post-boot machine: %d memory frames allocated\n" (Mem.frames_allocated mem);
  row "capture: %.3f ms (full machine: frames, MMU, CPUs, sysregs, keys)\n"
    capture_ms;
  metric ~experiment:"snapshot" ~name:"frames"
    ~value:(float_of_int (Mem.frames_allocated mem)) ~unit_:"count";
  metric ~experiment:"snapshot" ~name:"capture-ms" ~value:capture_ms ~unit_:"ms";
  let rate n f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do f () done;
    float_of_int n /. (Unix.gettimeofday () -. t0)
  in
  (* clean restores: nothing dirtied, the write-hook dirty set is empty *)
  K.System.restore sys snap;
  let clean_rate = rate 500 (fun () -> K.System.restore sys snap) in
  row "clean restore: %.0f restores/sec (empty dirty set)\n" clean_rate;
  metric ~experiment:"snapshot" ~name:"clean-restores-per-sec" ~value:clean_rate
    ~unit_:"ops/s";
  (* dirty restores: a full workload run between restores, so every
     frame the run touched is blitted back from the pristine copy *)
  ignore (K.System.run_smp ~quantum:400 sys ~tasks);
  let dirty_rate =
    rate 20 (fun () ->
        K.System.restore sys snap;
        ignore (K.System.run_smp ~quantum:400 sys ~tasks))
  in
  row "restore + full workload re-run: %.1f forks/sec\n" dirty_rate;
  metric ~experiment:"snapshot" ~name:"fork-run-per-sec" ~value:dirty_rate
    ~unit_:"ops/s";
  row "\ncapture copies every frame eagerly; restore pays only for frames\n";
  row "dirtied since the snapshot (write hooks track them), which is what\n";
  row "makes boot-once-fork-N campaigns cheap.\n"

(* Parallel mode: N independent single-core systems on real OCaml 5
   domains — wall-clock scaling of the simulator itself. Unlike E9
   (simulated parallel time on one interpreter), this uses the host's
   actual cores, so the measured speedup is hardware-limited. *)
let parallel () =
  header "Parallel: independent systems on OCaml domains (wall clock)";
  let host = Domain.recommended_domain_count () in
  let systems_per_run = 4 in
  let run_system idx =
    let p =
      Workloads.Smp.run_point
        ~seed:(Int64.of_int (1000 + idx))
        ~cpus:1 ~tasks:4 ~rounds:40 ()
    in
    p.Workloads.Smp.all_exited
  in
  let work domains =
    (* the same total work (systems_per_run systems), split across
       [domains] domains *)
    let t0 = Unix.gettimeofday () in
    let chunk d =
      List.init (systems_per_run / domains) (fun i -> run_system ((d * 8) + i))
    in
    let spawned = List.init domains (fun d -> Domain.spawn (fun () -> chunk d)) in
    let ok = List.for_all (List.for_all Fun.id) (List.map Domain.join spawned) in
    (Unix.gettimeofday () -. t0, ok)
  in
  ignore (work 1);
  (* warmed up *)
  let base, _ = work 1 in
  List.iter
    (fun domains ->
      let dt, ok = work domains in
      let speedup = base /. dt in
      row "%d domain%s: %6.3f s for %d systems, speedup %5.2fx%s\n" domains
        (if domains = 1 then " " else "s")
        dt systems_per_run speedup
        (if ok then "" else "  [INCOMPLETE]"))
    (List.filter (fun d -> d <= systems_per_run) [ 1; 2; 4 ]);
  row "\nhost offers %d core%s (Domain.recommended_domain_count); wall-clock\n" host
    (if host = 1 then "" else "s");
  row "speedup is bounded by that, independent of the simulated machine.\n"

(* FLEET: jobs/sec scaling of the work-stealing engine itself. The job
   unit is one single-machine SMP workload point; simulated results are
   asserted identical across worker counts (the engine's determinism
   contract), so the only quantity allowed to move is wall clock. *)
let fleet () =
  header "FLEET work-stealing engine: jobs/sec scaling across domains";
  let jobs = 32 and seed = 2026L in
  let host = Domain.recommended_domain_count () in
  let counts =
    List.sort_uniq compare [ 1; 2; 4; Fleet.Pool.default_workers () ]
  in
  let fingerprint points =
    Array.fold_left
      (fun acc p ->
        Int64.add (Int64.mul acc 1000003L)
          (Int64.add p.Workloads.Smp.makespan p.Workloads.Smp.aggregate))
      0L points
  in
  let run workers =
    let t0 = Unix.gettimeofday () in
    let points, stats = Fleet.Sweep.bench_points ~workers ~seed ~jobs () in
    (Unix.gettimeofday () -. t0, points, stats)
  in
  ignore (run 1) (* warm up *);
  let results = List.map (fun w -> (w, run w)) counts in
  let base_wall, base_fp =
    match results with
    | (_, (wall, points, _)) :: _ -> (wall, fingerprint points)
    | [] -> (1.0, 0L)
  in
  row "%d jobs (1-cpu SMP workload points), host offers %d cores\n\n" jobs host;
  row "%-8s %10s %12s %9s %8s\n" "workers" "wall (s)" "jobs/sec" "speedup"
    "steals";
  List.iter
    (fun (w, (wall, points, stats)) ->
      if fingerprint points <> base_fp then
        failwith
          (Printf.sprintf
             "fleet bench: results diverged at %d workers (determinism broken)"
             w);
      let jobs_per_sec = float_of_int jobs /. wall in
      let speedup = base_wall /. wall in
      let steals = Array.fold_left ( + ) 0 stats.Fleet.Pool.steals in
      row "%-8d %10.3f %12.1f %8.2fx %8d\n" w wall jobs_per_sec speedup steals;
      let pfx = Printf.sprintf "%d-workers-" w in
      metric ~experiment:"fleet" ~name:(pfx ^ "jobs-per-sec")
        ~value:jobs_per_sec ~unit_:"jobs/s";
      metric ~experiment:"fleet" ~name:(pfx ^ "speedup") ~value:speedup
        ~unit_:"ratio")
    results;
  metric ~experiment:"fleet" ~name:"deterministic" ~value:1.0 ~unit_:"bool";
  row "\nevery worker count produced bit-identical simulated results; the\n";
  row "speedup column is host-hardware-limited, like the parallel experiment.\n";

  (* Span histograms across the fleet (PR 9): a telemetry-enabled fault
     campaign per scheme, with the merged histogram JSON hard-asserted
     byte-identical for 1/2/8 workers — the exact-merge monoid folded
     in trial-index order cannot see the work-stealing schedule. *)
  let trials = 16 and hist_seed = 2026L in
  let hist_json config workers =
    let result =
      Option.get
        (Fleet.Campaign.run ~config ~config_name:(C.Config.name config)
           ~workers ~telemetry:true ~seed:hist_seed ~trials ())
    in
    match result.Fleet.Campaign.telemetry with
    | Some tel -> Telemetry.Span.histograms_to_json tel.Fleet.Campaign.hists
    | None -> failwith "telemetry campaign returned no summary"
  in
  row "\nspan latency across a %d-trial fault campaign per scheme (cycles):\n"
    trials;
  row "%-16s %-16s %8s %8s %8s %8s\n" "scheme" "kind" "count" "p50" "p99" "max";
  List.iter
    (fun (name, config) ->
      let result =
        Option.get
          (Fleet.Campaign.run ~config ~config_name:(C.Config.name config)
             ~workers:2 ~telemetry:true ~seed:hist_seed ~trials ())
      in
      let tel = Option.get result.Fleet.Campaign.telemetry in
      List.iter
        (fun (kind, h) ->
          if not (Telemetry.Hist.is_empty h) then begin
            row "%-16s %-16s %8Ld %8Ld %8Ld %8Ld\n" name
              (Telemetry.Span.kind_name kind) (Telemetry.Hist.count h)
              (Telemetry.Hist.p50 h) (Telemetry.Hist.p99 h)
              (Telemetry.Hist.max_value h);
            metric ~experiment:"fleet"
              ~name:
                (Printf.sprintf "%s-%s-p99" (slug name)
                   (Telemetry.Span.kind_name kind))
              ~value:(Int64.to_float (Telemetry.Hist.p99 h))
              ~unit_:"cycles"
          end)
        tel.Fleet.Campaign.hists)
    Workloads.Lmbench.configs;
  let h1 = hist_json C.Config.full 1 in
  let h2 = hist_json C.Config.full 2 in
  let h8 = hist_json C.Config.full 8 in
  if h1 <> h2 || h1 <> h8 then
    failwith "fleet bench: merged span histograms diverged across 1/2/8 workers";
  row "\nmerged histogram JSON is byte-identical for 1/2/8 workers\n";
  metric ~experiment:"fleet" ~name:"hist-deterministic" ~value:1.0 ~unit_:"bool"

(* LINT: the whole-image interprocedural analyzer under the fleet
   engine. Two contracts: (1) determinism — diagnostics and gadget
   census of the full kernel image are byte-identical whether the
   per-function rounds run sequentially or on 2/8 work-stealing
   domains (hard failure if not); (2) scaling — a batch of whole-image
   lints fanned out over the pool, wall-clock only, bounded by host
   cores like every parallel experiment. The census quantities of the
   colliding schemes are emitted as seeded metrics so CI can pin
   them. *)
let lint_bench () =
  header "LINT whole-image analyzer: determinism + worker scaling";
  let configs =
    [
      C.Config.full;
      C.Config.backward_only;
      C.Config.compat;
      C.Config.none;
      { C.Config.backward_only with scheme = C.Modifier.Sp_only };
      { C.Config.backward_only with scheme = C.Modifier.Parts 0x7357L };
      { C.Config.backward_only with scheme = C.Modifier.Chained };
    ]
  in
  let par workers =
    if workers <= 1 then Paclint.Lint.seq_par
    else
      { Paclint.Lint.pmap = (fun ~jobs f -> Fleet.Pool.map ~workers ~jobs f) }
  in
  let fingerprint (r : K.Kbuild.lint_report) =
    Paclint.Census.to_json r.K.Kbuild.census
    ^ Paclint.Diag.list_to_json r.K.Kbuild.diags
  in
  (* determinism of the inner per-function parallelism *)
  let fps =
    List.map
      (fun w -> (w, fingerprint (K.Kbuild.lint_report ~par:(par w) C.Config.full)))
      [ 1; 2; 8 ]
  in
  let _, base_fp = List.hd fps in
  List.iter
    (fun (w, fp) ->
      if fp <> base_fp then
        failwith
          (Printf.sprintf
             "lint bench: report diverged at %d workers (determinism broken)" w))
    fps;
  row "full-image report byte-identical for workers in {1, 2, 8}\n";
  metric ~experiment:"lint" ~name:"deterministic" ~value:1.0 ~unit_:"bool";
  (* seeded census quantities CI pins *)
  List.iter
    (fun config ->
      let r = K.Kbuild.lint_report config in
      let errors = List.filter Paclint.Diag.is_error r.K.Kbuild.diags in
      let pairs = Attacks.Census_check.frame_replay_pairs r.K.Kbuild.census in
      let name = slug (C.Config.name config) in
      row "%-44s %3d diags, %d errors, %5d frame-replay pairs\n"
        (C.Config.name config)
        (List.length r.K.Kbuild.diags)
        (List.length errors) pairs;
      metric ~experiment:"lint" ~name:(name ^ "-errors")
        ~value:(float_of_int (List.length errors))
        ~unit_:"count";
      metric ~experiment:"lint" ~name:(name ^ "-frame-replay-pairs")
        ~value:(float_of_int pairs) ~unit_:"count")
    configs;
  (* wall-clock scaling over a batch of whole-image lints *)
  let n = List.length configs in
  let jobs = 2 * n in
  let arr = Array.of_list configs in
  let run workers =
    let t0 = Unix.gettimeofday () in
    let out =
      Fleet.Pool.map ~workers ~jobs (fun i ->
          fingerprint (K.Kbuild.lint_report arr.(i mod n)))
    in
    (Unix.gettimeofday () -. t0, out)
  in
  ignore (run 1) (* warm up *);
  let base_wall, base_out = run 1 in
  row "\n%d whole-image lints per run, host offers %d cores\n\n" jobs
    (Domain.recommended_domain_count ());
  row "%-8s %10s %12s %9s\n" "workers" "wall (s)" "lints/sec" "speedup";
  List.iter
    (fun w ->
      let wall, out = run w in
      if out <> base_out then
        failwith
          (Printf.sprintf
             "lint bench: batch diverged at %d workers (determinism broken)" w);
      let speedup = base_wall /. wall in
      row "%-8d %10.3f %12.1f %8.2fx\n" w wall
        (float_of_int jobs /. wall)
        speedup;
      metric ~experiment:"lint"
        ~name:(Printf.sprintf "%d-workers-speedup" w)
        ~value:speedup ~unit_:"ratio")
    [ 1; 2; 4 ];
  row "\nwall-clock speedup is host-hardware-limited, like the fleet experiment.\n"

(* Bechamel wall-time suite: how fast the simulator itself is. *)
let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  header "Bechamel: simulator wall-time per experiment unit";
  let cipher = Qarma.Block.create () in
  let key = Qarma.Block.key_of_pair (3L, 4L) in
  let sys = K.System.boot ~config:C.Config.full ~seed:31L () in
  let tests =
    [
      Test.make ~name:"qarma64-encrypt"
        (Staged.stage (fun () -> Qarma.Block.encrypt cipher ~key ~tweak:5L 42L));
      Test.make ~name:"pac-compute"
        (Staged.stage (fun () ->
             Pac.compute ~cipher ~key:Pac.{ hi = 3L; lo = 4L } ~cfg:Vaddr.linux_kernel
               ~modifier:7L 0xffff000000234000L));
      Test.make ~name:"syscall-getpid-full-cfi"
        (Staged.stage (fun () ->
             match K.System.syscall sys ~nr:K.Kbuild.sys_getpid ~args:[] with
             | K.System.Ok v -> v
             | K.System.Killed _ | K.System.Panicked _ -> -1L));
      Test.make ~name:"call-overhead-probe"
        (Staged.stage (fun () -> Workloads.Calls.measure_one C.Config.none ~calls:10));
    ]
  in
  let grouped = Test.make_grouped ~name:"camouflage" ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> row "%-40s %12.1f ns/run\n" name est
      | Some [] | None -> row "%-40s %12s\n" name "n/a")
    results

(* SIM: host throughput of the interpreter itself — the one experiment
   whose headline numbers are wall-clock (guest-MIPS), measuring the
   execution tiers (interp / decoded-instruction cache / superblock
   traces) rather than anything the guest can observe. The run is the
   exact E2 call-heavy workload; simulated state must be bit-identical
   across all three tiers, which this experiment hard-asserts before
   reporting throughput. The deterministic companions (retired
   instructions, cache hit rate, trace-cache effectiveness) are also
   emitted, so the JSON artifact carries both the seeded quantities and
   the host-speed trajectory. *)
let sim () =
  header
    "SIM  Host throughput: execution tiers interp/icache/traces (E2 workload)";
  (* One timed run; returns the cpu (for state comparison) and wall
     seconds. Throughput is the best of [reps] runs — host noise only
     ever slows a run down, so min is the faithful estimator. *)
  let one config ~calls ~tier =
    let cpu = Bare.machine ~tier () in
    let obj = Workloads.Calls.calls_object config ~calls in
    let prog = Asm.create () in
    List.iter
      (fun (name, items) -> Asm.add_function prog ~name items)
      obj.Kelf.Object_file.functions;
    let layout = Bare.load cpu prog in
    let t0 = Unix.gettimeofday () in
    (match Bare.call ~max_insns:100_000_000 cpu layout "caller" with
    | Cpu.Sentinel_return -> ()
    | other -> failwith ("sim bench: " ^ Cpu.stop_to_string other));
    let wall = Unix.gettimeofday () -. t0 in
    (cpu, wall)
  in
  let measure config ~calls ~reps ~tier =
    let cpu, w0 = one config ~calls ~tier in
    let best = ref w0 in
    for _ = 2 to reps do
      let _, w = one config ~calls ~tier in
      if w < !best then best := w
    done;
    (cpu, !best)
  in
  let variant label config ~calls ~reps =
    let runs =
      List.map (fun tier -> (tier, measure config ~calls ~reps ~tier)) Cpu.all_tiers
    in
    let cpu_of tier = fst (List.assoc tier runs) in
    let wall_of tier = snd (List.assoc tier runs) in
    (* The tiers must be invisible to the guest: identical retirement
       and cycle totals, or the throughput comparison is meaningless. *)
    let base = cpu_of Cpu.Interp in
    List.iter
      (fun (tier, (cpu, _)) ->
        if
          Cpu.insns_retired cpu <> Cpu.insns_retired base
          || Cpu.cycles cpu <> Cpu.cycles base
        then
          failwith
            (Printf.sprintf
               "sim bench: %s run diverged from interp (insns %Ld vs %Ld, \
                cycles %Ld vs %Ld)"
               (Cpu.tier_name tier) (Cpu.insns_retired cpu)
               (Cpu.insns_retired base) (Cpu.cycles cpu) (Cpu.cycles base)))
      runs;
    let insns = Int64.to_float (Cpu.insns_retired base) in
    let mips_of tier = insns /. wall_of tier /. 1e6 in
    let icache_speedup = mips_of Cpu.Icache /. mips_of Cpu.Interp in
    let traces_over_interp = mips_of Cpu.Traces /. mips_of Cpu.Interp in
    let traces_over_icache = mips_of Cpu.Traces /. mips_of Cpu.Icache in
    let istats = Icache.stats (Cpu.icache (cpu_of Cpu.Icache)) in
    let fetches = istats.Icache.fetch_hits + istats.Icache.fetch_misses in
    let hit_rate =
      if fetches = 0 then 0.0
      else float_of_int istats.Icache.fetch_hits /. float_of_int fetches
    in
    let ts =
      match Cpu.trace_stats (cpu_of Cpu.Traces) with
      | Some ts -> ts
      | None -> failwith "sim bench: traces core carries no trace cache"
    in
    let block_share =
      if insns = 0.0 then 0.0 else float_of_int ts.Traces.block_insns /. insns
    in
    row "\n[%s] E2 call probe, %d calls, %s; %.1f M instructions retired\n"
      label calls (C.Config.name config) (insns /. 1e6);
    row "%-28s" "";
    List.iter (fun tier -> row " %14s" (Cpu.tier_name tier)) Cpu.all_tiers;
    row "\n%-28s" "wall time (s, best of runs)";
    List.iter (fun tier -> row " %14.2f" (wall_of tier)) Cpu.all_tiers;
    row "\n%-28s" "guest MIPS";
    List.iter (fun tier -> row " %14.1f" (mips_of tier)) Cpu.all_tiers;
    row
      "\nspeedup: icache %.2fx, traces %.2fx over interp (%.2fx over icache)\n"
      icache_speedup traces_over_interp traces_over_icache;
    row "icache: %.2f%% fetch hit rate, %d fills, %d invalidations\n"
      (100. *. hit_rate) istats.Icache.fills istats.Icache.invalidations;
    row
      "traces: %d blocks compiled, %d dispatches, %.1f%% of insns in blocks, \
       %d chain follows\n"
      ts.Traces.compiled ts.Traces.executed (100. *. block_share)
      ts.Traces.chain_follows;
    metric ~experiment:"sim" ~name:("retired-insns-" ^ label) ~value:insns
      ~unit_:"insns";
    metric ~experiment:"sim"
      ~name:("icache-fetch-hit-rate-" ^ label)
      ~value:hit_rate ~unit_:"ratio";
    List.iter
      (fun tier ->
        metric ~experiment:"sim"
          ~name:("guest-mips-" ^ Cpu.tier_name tier ^ "-" ^ label)
          ~value:(mips_of tier) ~unit_:"mips")
      Cpu.all_tiers;
    (* legacy spellings, kept so older metric consumers keep working *)
    metric ~experiment:"sim"
      ~name:("guest-mips-uncached-" ^ label)
      ~value:(mips_of Cpu.Interp) ~unit_:"mips";
    metric ~experiment:"sim"
      ~name:("guest-mips-cached-" ^ label)
      ~value:(mips_of Cpu.Icache) ~unit_:"mips";
    metric ~experiment:"sim" ~name:("icache-speedup-" ^ label)
      ~value:icache_speedup ~unit_:"ratio";
    metric ~experiment:"sim"
      ~name:("traces-speedup-over-interp-" ^ label)
      ~value:traces_over_interp ~unit_:"ratio";
    metric ~experiment:"sim"
      ~name:("traces-speedup-over-icache-" ^ label)
      ~value:traces_over_icache ~unit_:"ratio";
    metric ~experiment:"sim"
      ~name:("trace-block-insn-share-" ^ label)
      ~value:block_share ~unit_:"ratio";
    (icache_speedup, traces_over_interp, traces_over_icache)
  in
  (* Headline: the baseline (no-CFI) variant, where the interpreter loop
     is the whole cost and the tier machinery's effect is visible. *)
  let icache_speedup, traces_interp, traces_icache =
    variant "baseline" C.Config.none ~calls:300_000 ~reps:3
  in
  (* Companion: the Camouflage-instrumented variant of the same probe.
     Its runtime is dominated by host-side QARMA cipher evaluations
     (~19 us per PAC/AUT), so by Amdahl's law the fetch/decode savings
     barely move the total — reported for honesty, not as the target.
     Smaller and unrepeated: the cipher makes it ~30x slower per call. *)
  let _ = variant "camouflage" C.Config.backward_only ~calls:30_000 ~reps:1 in
  row
    "\nacceptance floor (baseline): icache >= 3x interp (got %.2fx), traces \
     >= 2x icache (got %.2fx); traces over interp: %.2fx\n"
    icache_speedup traces_icache traces_interp;
  metric ~experiment:"sim" ~name:"icache-speedup" ~value:icache_speedup
    ~unit_:"ratio";
  metric ~experiment:"sim" ~name:"traces-speedup-over-interp"
    ~value:traces_interp ~unit_:"ratio";
  metric ~experiment:"sim" ~name:"traces-speedup-over-icache"
    ~value:traces_icache ~unit_:"ratio"

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("sim", sim);
    ("snapshot", snapshot_bench);
    ("fleet", fleet);
    ("lint", lint_bench);
    ("parallel", parallel);
    ("oracle", oracle);
    ("a1", a1);
    ("a2", a2);
    ("a3", a3);
    ("a4", a4);
    ("a5", a5);
    ("a6", a6);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* peel off --json FILE (alias --metrics-json FILE) anywhere in the
     argument list; the remaining words select experiments as before *)
  let rec split_json names = function
    | ("--json" | "--metrics-json") :: path :: rest ->
        let names', _ = split_json names rest in
        (names', Some path)
    | ("--json" | "--metrics-json") :: [] ->
        Printf.eprintf "--json needs a file argument\n";
        exit 2
    | arg :: rest -> split_json (arg :: names) rest
    | [] -> (List.rev names, None)
  in
  let names, json_path = split_json [] args in
  (match names with
  | [] ->
      List.iter (fun (_, f) -> f ()) experiments;
      bechamel_suite ()
  | [ "bechamel" ] -> bechamel_suite ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) experiments with
          | Some f -> f ()
          | None when name = "bechamel" -> bechamel_suite ()
          | None -> Printf.eprintf "unknown experiment %s\n" name)
        names);
  match json_path with None -> () | Some path -> write_metrics path
